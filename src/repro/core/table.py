"""Relation substrate: numpy-backed tables with column metadata.

A :class:`Table` is the ground-truth oracle of the benchmark.  Every
estimator is fit against a table, and the exact answer to a conjunctive
range query is computed here by vectorised predicate evaluation.

Values are stored as ``float64``.  Categorical columns hold integer codes
(0..k-1); numerical columns hold raw measurements.  This mirrors the
preprocessing used by the paper's released benchmark, which dictionary-
encodes categorical attributes before handing data to the estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Column:
    """Metadata for one attribute of a relation.

    Attributes:
        name: Attribute name, used in SQL rendering and reports.
        is_categorical: If true, only equality predicates are generated
            for this column (paper Section 3, workload generator).
        distinct_values: Sorted unique values present in the column.
    """

    name: str
    is_categorical: bool
    distinct_values: np.ndarray = field(repr=False)

    @property
    def domain_min(self) -> float:
        return float(self.distinct_values[0])

    @property
    def domain_max(self) -> float:
        return float(self.distinct_values[-1])

    @property
    def domain_size(self) -> float:
        """Width of the value domain (max - min)."""
        return self.domain_max - self.domain_min

    @property
    def num_distinct(self) -> int:
        return int(len(self.distinct_values))


class Table:
    """An in-memory relation with exact query evaluation.

    Args:
        name: Relation name.
        data: 2-D array of shape ``(num_rows, num_columns)``.
        column_names: One name per column.
        categorical: Per-column flag; defaults to all-numerical.
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        column_names: list[str] | None = None,
        categorical: list[bool] | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"table data must be 2-D, got shape {data.shape}")
        if data.shape[0] == 0:
            raise ValueError("table must contain at least one row")
        if not np.all(np.isfinite(data)):
            raise ValueError("table data must be finite (no NaN/inf)")
        self.name = name
        self.data = data
        n_cols = data.shape[1]
        if column_names is None:
            column_names = [f"col{i}" for i in range(n_cols)]
        if len(column_names) != n_cols:
            raise ValueError("column_names length does not match data width")
        if categorical is None:
            categorical = [False] * n_cols
        if len(categorical) != n_cols:
            raise ValueError("categorical length does not match data width")
        self.columns = [
            Column(
                name=column_names[i],
                is_categorical=categorical[i],
                distinct_values=np.unique(data[:, i]),
            )
            for i in range(n_cols)
        ]

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.data.shape[1])

    @property
    def num_categorical(self) -> int:
        return sum(1 for c in self.columns if c.is_categorical)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Return the position of the column called ``name``."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no column named {name!r} in table {self.name!r}")

    def log10_domain_product(self) -> float:
        """log10 of the joint-domain size (the "Domain" column of Table 3)."""
        counts = np.array([c.num_distinct for c in self.columns], dtype=np.float64)
        return float(np.sum(np.log10(counts)))

    def size_bytes(self) -> int:
        """In-memory size of the data payload, used for model-size budgets."""
        return int(self.data.nbytes)

    # ------------------------------------------------------------------
    # Query evaluation (ground truth)
    # ------------------------------------------------------------------
    def selection_mask(self, query: "Query") -> np.ndarray:  # noqa: F821
        """Boolean mask of rows satisfying every predicate of ``query``."""
        mask = np.ones(self.num_rows, dtype=bool)
        for pred in query.predicates:
            col = self.data[:, pred.column]
            if pred.lo is not None:
                mask &= col >= pred.lo
            if pred.hi is not None:
                mask &= col <= pred.hi
        return mask

    def cardinality(self, query: "Query") -> int:  # noqa: F821
        """Exact COUNT(*) answer for a conjunctive query."""
        return int(np.count_nonzero(self.selection_mask(query)))

    def cardinalities(self, queries: list["Query"]) -> np.ndarray:  # noqa: F821
        """Exact answers for a batch of queries."""
        return np.array([self.cardinality(q) for q in queries], dtype=np.float64)

    def selectivity(self, query: "Query") -> float:  # noqa: F821
        """Fraction of rows satisfying the query."""
        return self.cardinality(query) / self.num_rows

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def sample(self, fraction: float, rng: np.random.Generator) -> "Table":
        """Uniform random sample of rows as a new table (without replacement)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        n = max(1, int(round(self.num_rows * fraction)))
        idx = rng.choice(self.num_rows, size=n, replace=False)
        return Table(
            f"{self.name}_sample",
            self.data[idx],
            self.column_names,
            [c.is_categorical for c in self.columns],
        )

    def append_rows(self, rows: np.ndarray, name: str | None = None) -> "Table":
        """New table with ``rows`` appended (the dynamic-environment update)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.num_columns:
            raise ValueError(
                f"appended rows must have shape (*, {self.num_columns}), got {rows.shape}"
            )
        return Table(
            name or self.name,
            np.vstack([self.data, rows]),
            self.column_names,
            [c.is_categorical for c in self.columns],
        )

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, cols={self.num_columns}, "
            f"cat={self.num_categorical})"
        )
