"""Conjunctive range queries over a single table.

The paper (Section 2.1) considers queries of the form::

    SELECT COUNT(*) FROM R WHERE theta_1 AND ... AND theta_d

where each predicate is an equality (``A = a``), an open range
(``A <= a`` / ``A >= a``) or a closed range (``a <= A <= b``).  A
:class:`Predicate` captures all three with an optional lower/upper bound;
a :class:`Query` is a conjunction of predicates over distinct columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from .table import Table


@dataclass(frozen=True)
class Predicate:
    """One bound interval on one column.

    ``lo``/``hi`` of ``None`` denote an unbounded side (open range).
    ``lo == hi`` denotes an equality predicate.  ``lo > hi`` is permitted:
    it is the "invalid predicate" probed by the Fidelity-B rule and
    matches nothing.
    """

    column: int
    lo: float | None
    hi: float | None

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise ValueError("predicate must bound at least one side")

    @property
    def is_equality(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_open(self) -> bool:
        """True when only one side is bounded."""
        return self.lo is None or self.hi is None

    @property
    def is_empty(self) -> bool:
        """True for contradictory predicates like ``100 <= A <= 10``."""
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def contains(self, other: "Predicate") -> bool:
        """True when this interval contains ``other`` (same column)."""
        if self.column != other.column:
            return False
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def render(self, column_name: str) -> str:
        if self.is_equality:
            return f"{column_name} = {self.lo:g}"
        if self.lo is None:
            return f"{column_name} <= {self.hi:g}"
        if self.hi is None:
            return f"{column_name} >= {self.lo:g}"
        return f"{self.lo:g} <= {column_name} <= {self.hi:g}"


@dataclass(frozen=True)
class Query:
    """A conjunction of predicates over distinct columns."""

    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        cols = [p.column for p in self.predicates]
        if len(cols) != len(set(cols)):
            raise ValueError("each column may appear in at most one predicate")
        if not self.predicates:
            raise ValueError("query must have at least one predicate")

    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    @property
    def columns(self) -> tuple[int, ...]:
        return tuple(p.column for p in self.predicates)

    def predicate_on(self, column: int) -> Predicate | None:
        """Return the predicate on ``column``, or None if unconstrained."""
        for p in self.predicates:
            if p.column == column:
                return p
        return None

    def to_sql(self, table: Table) -> str:
        """Human-readable SQL rendering of the query."""
        clauses = " AND ".join(
            p.render(table.columns[p.column].name) for p in self.predicates
        )
        return f"SELECT COUNT(*) FROM {table.name} WHERE {clauses}"

    def replace(self, column: int, predicate: Predicate) -> "Query":
        """New query with the predicate on ``column`` swapped out."""
        preds = tuple(
            predicate if p.column == column else p for p in self.predicates
        )
        return Query(preds)


def closed_range(column: int, lo: float, hi: float) -> Predicate:
    """Convenience constructor for ``lo <= A <= hi``."""
    return Predicate(column, lo, hi)


def equality(column: int, value: float) -> Predicate:
    """Convenience constructor for ``A = value``."""
    return Predicate(column, value, value)


def query_of(*predicates: Predicate) -> Query:
    """Build a query from predicates given in any order."""
    return Query(tuple(predicates))
