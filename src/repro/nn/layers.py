"""Minimal neural-network layers with manual backpropagation.

The paper's neural estimators (Naru, MSCN, LW-NN) are built on PyTorch;
this environment has no deep-learning framework, so ``repro.nn`` provides
the handful of primitives those models need: dense layers, masked dense
layers (for autoregressive MADE masks), ReLU, and a sequential container.

Each :class:`Module` exposes ``forward(x)`` and ``backward(grad)``;
``backward`` must be called with the gradient of the loss w.r.t. the most
recent ``forward`` output, and accumulates parameter gradients in-place.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its gradient accumulator.

    ``dtype`` defaults to float64 (the substrate's reference precision);
    pass ``np.float32`` for the opt-in reduced-precision training path.
    """

    def __init__(self, value: np.ndarray, dtype: np.dtype | None = None) -> None:
        self.value = np.asarray(value, dtype=np.float64 if dtype is None else dtype)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        return int(self.value.size)


class Module:
    """Base class: a differentiable function with parameters."""

    def parameters(self) -> list[Parameter]:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier-uniform initialisation, the PyTorch Linear default."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Fully-connected layer ``y = x @ W + b``.

    Inputs are expected in the layer's dtype; callers on the float32
    path cast their feature matrices once, up front.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.weight = Parameter(glorot_uniform(in_dim, out_dim, rng), dtype=dtype)
        self.bias = Parameter(np.zeros(out_dim), dtype=dtype)
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T


class MaskedLinear(Module):
    """Dense layer whose weight matrix is element-wise masked.

    The autoregressive property of MADE [Germain et al. 2015] is enforced
    by zeroing forbidden connections.  The weight matrix is kept masked
    as an *invariant* rather than re-masked on every pass: the initial
    weights are masked, the weight gradient is masked, and a zero
    gradient moves neither SGD nor Adam (zero moments, zero update), so
    masked entries stay exactly 0.0 forever and ``forward``/``backward``
    can use ``weight.value`` directly — one fewer ``in_dim x out_dim``
    materialisation per pass in each direction.  Code that overwrites
    ``weight.value`` wholesale must call :meth:`apply_mask` afterwards.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        mask: np.ndarray,
        rng: np.random.Generator,
        dtype: np.dtype = np.float64,
    ) -> None:
        mask = np.asarray(mask, dtype=dtype)
        if mask.shape != (in_dim, out_dim):
            raise ValueError(f"mask shape {mask.shape} != ({in_dim}, {out_dim})")
        self.mask = mask
        self.weight = Parameter(glorot_uniform(in_dim, out_dim, rng) * mask, dtype=dtype)
        self.bias = Parameter(np.zeros(out_dim), dtype=dtype)
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def apply_mask(self) -> None:
        """Re-establish the masked-weight invariant after an external
        assignment to ``weight.value`` (e.g. loading a checkpoint)."""
        self.weight.value *= self.mask

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += (self._x.T @ grad) * self.mask
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._active: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._active = x > 0.0
        return np.where(self._active, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._active is None:
            raise RuntimeError("backward called before forward")
        return grad * self._active


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def parameters(self) -> list[Parameter]:
        return [p for m in self.modules for p in m.parameters()]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for m in self.modules:
            x = m.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for m in reversed(self.modules):
            grad = m.backward(grad)
        return grad
