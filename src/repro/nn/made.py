"""ResMADE: masked autoregressive network, the building block of Naru.

MADE [Germain et al. 2015] turns an MLP into an autoregressive density
model by masking weights so the output distribution for column ``i``
depends only on columns ``< i``.  Naru's paper picks the residual variant
("ResMADE") as its basic block because it is "both efficient and
accurate" (paper Section 3); we do the same.

Columns are presented in their natural order.  The input is the
concatenation of per-column one-hot encodings; the output is the
concatenation of per-column logits.  ``P(x) = prod_i P(x_i | x_<i)`` is
obtained by reading the softmax of each column's logit slice.
"""

from __future__ import annotations

import numpy as np

from .layers import MaskedLinear, Module, Parameter, ReLU
from .loss import softmax, softmax_cross_entropy


def _degrees(cardinalities: list[int]) -> np.ndarray:
    """Degree (owning column index) of every input unit."""
    return np.concatenate(
        [np.full(k, i, dtype=np.int64) for i, k in enumerate(cardinalities)]
    )


class ResMadeBlock(Module):
    """Residual masked block: ``h <- h + relu(masked_linear(h))``.

    The hidden-to-hidden mask uses ``>=`` on degrees, so adding the block
    output back onto its input preserves the autoregressive property.
    """

    def __init__(
        self,
        hidden: int,
        degrees: np.ndarray,
        rng: np.random.Generator,
        dtype: np.dtype = np.float64,
    ) -> None:
        mask = (degrees[:, None] <= degrees[None, :]).astype(dtype)
        self.linear = MaskedLinear(hidden, hidden, mask, rng, dtype=dtype)
        self.relu = ReLU()

    def parameters(self) -> list[Parameter]:
        return self.linear.parameters()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.relu.forward(self.linear.forward(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad + self.linear.backward(self.relu.backward(grad))


class ResMade(Module):
    """Masked autoregressive network over discretised columns.

    Args:
        cardinalities: Number of bins of each column, in column order.
        hidden_units: Width of the hidden layers.
        hidden_layers: Total number of hidden layers (the first is a plain
            masked layer; the rest are residual blocks).
        rng: Source of randomness for initialisation.
        dtype: Compute precision; float64 (default) is the reference
            path, float32 the opt-in fast path (halved memory traffic in
            every matmul — see DESIGN.md §10).
    """

    def __init__(
        self,
        cardinalities: list[int],
        hidden_units: int,
        hidden_layers: int,
        rng: np.random.Generator,
        dtype: np.dtype = np.float64,
    ) -> None:
        if len(cardinalities) < 1:
            raise ValueError("need at least one column")
        if hidden_layers < 1:
            raise ValueError("need at least one hidden layer")
        self.cardinalities = list(cardinalities)
        self.dtype = np.dtype(dtype)
        n_cols = len(cardinalities)
        in_degrees = _degrees(self.cardinalities)
        # Hidden degrees cycle over 0..n_cols-2 (a unit of degree m may see
        # inputs of columns <= m and feed outputs of columns > m).  With a
        # single column there is nothing to condition on.
        max_degree = max(n_cols - 1, 1)
        hidden_degrees = np.arange(hidden_units, dtype=np.int64) % max_degree

        in_mask = (in_degrees[:, None] <= hidden_degrees[None, :]).astype(dtype)
        self.input_layer = MaskedLinear(
            int(in_degrees.size), hidden_units, in_mask, rng, dtype=dtype
        )
        self.input_relu = ReLU()
        self.blocks = [
            ResMadeBlock(hidden_units, hidden_degrees, rng, dtype=dtype)
            for _ in range(hidden_layers - 1)
        ]
        out_degrees = _degrees(self.cardinalities)
        out_mask = (hidden_degrees[:, None] < out_degrees[None, :]).astype(dtype)
        self.output_layer = MaskedLinear(
            hidden_units, int(out_degrees.size), out_mask, rng, dtype=dtype
        )
        offsets = np.concatenate([[0], np.cumsum(self.cardinalities)])
        self._offsets = offsets

    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params = self.input_layer.parameters() + self.output_layer.parameters()
        for block in self.blocks:
            params += block.parameters()
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.input_relu.forward(self.input_layer.forward(x))
        for block in self.blocks:
            h = block.forward(h)
        return self.output_layer.forward(h)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.output_layer.backward(grad)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.input_layer.backward(self.input_relu.backward(grad))

    # ------------------------------------------------------------------
    # Encoding and per-column views
    # ------------------------------------------------------------------
    def encode(
        self, binned_rows: np.ndarray, input_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """One-hot encode integer bin indices, shape (B, n_cols) -> (B, D).

        ``input_mask`` (B, n_cols, boolean) marks *wildcard* inputs: a
        masked column's one-hot stays all-zero, the encoding Naru uses to
        train wildcard-skipping (absent input = "any value").
        """
        binned_rows = np.asarray(binned_rows, dtype=np.int64)
        batch = binned_rows.shape[0]
        out = np.zeros((batch, int(self._offsets[-1])), dtype=self.dtype)
        rows = np.arange(batch)
        for i, k in enumerate(self.cardinalities):
            vals = binned_rows[:, i]
            if np.any((vals < 0) | (vals >= k)):
                raise ValueError(f"bin index out of range for column {i}")
            hot = np.ones(batch, dtype=self.dtype) if input_mask is None else (
                ~input_mask[:, i]
            ).astype(self.dtype)
            out[rows, self._offsets[i] + vals] = hot
        return out

    def column_logits(self, logits: np.ndarray, column: int) -> np.ndarray:
        """Slice of the output belonging to ``column``."""
        return logits[:, self._offsets[column] : self._offsets[column + 1]]

    def column_distribution(self, logits: np.ndarray, column: int) -> np.ndarray:
        """Conditional distribution ``P(x_column | x_<column)`` per row."""
        return softmax(self.column_logits(logits, column))

    def conditional_from_bins(
        self,
        prefix_bins: np.ndarray,
        column: int,
        present: np.ndarray | None = None,
    ) -> np.ndarray:
        """``P(x_column | x_<column)`` for a batch of integer-bin prefixes.

        Only columns ``< column`` of ``prefix_bins`` are read; the rest
        are treated as absent (zero input), which the masks guarantee
        cannot influence this column's output anyway.  ``present``
        (boolean per column) marks which earlier columns are actually
        conditioned on — absent ones stay wildcard inputs, which a
        wildcard-trained model interprets as marginalisation.
        """
        prefix_bins = np.asarray(prefix_bins, dtype=np.int64)
        batch = prefix_bins.shape[0]
        x = np.zeros((batch, int(self._offsets[-1])), dtype=self.dtype)
        rows = np.arange(batch)
        for i in range(column):
            if present is None or present[i]:
                x[rows, self._offsets[i] + prefix_bins[:, i]] = 1.0
        return self.column_distribution(self.forward(x), column)

    def conditional_sparse(
        self,
        prefix_bins: np.ndarray,
        column: int,
        present: np.ndarray | None = None,
    ) -> np.ndarray:
        """Same distribution as :meth:`conditional_from_bins`, computed
        without materialising the one-hot input or the full logit vector.

        A one-hot input selects exactly one row of the (masked) input
        weight per conditioned column, so the first hidden activation is
        a sum of gathered weight rows, and only ``column``'s slice of the
        output layer is ever multiplied out.  Floating-point summation
        order differs from the dense matmul, so the result agrees with
        the dense path to rounding error rather than bit-exactly.
        """
        prefix_bins = np.asarray(prefix_bins, dtype=np.int64)
        batch = prefix_bins.shape[0]
        # The masked-weight invariant (see MaskedLinear) means the raw
        # weight matrices are already masked — no re-materialisation.
        w_in = self.input_layer.weight.value
        h = np.broadcast_to(
            self.input_layer.bias.value, (batch, w_in.shape[1])
        ).copy()
        for i in range(column):
            if present is None or present[i]:
                h += w_in[self._offsets[i] + prefix_bins[:, i]]
        h = np.where(h > 0.0, h, 0.0)  # input ReLU
        for block in self.blocks:
            h = block.forward(h)
        lo, hi = int(self._offsets[column]), int(self._offsets[column + 1])
        w_out = self.output_layer.weight.value[:, lo:hi]
        return softmax(h @ w_out + self.output_layer.bias.value[lo:hi])

    # ------------------------------------------------------------------
    def nll_step(
        self, binned_rows: np.ndarray, input_mask: np.ndarray | None = None
    ) -> tuple[float, np.ndarray]:
        """Negative log-likelihood of a batch and the output-logit gradient.

        Returns ``(loss, grad)`` where ``grad`` has the full output shape
        and can be passed to :meth:`backward`.  ``input_mask`` trains
        wildcard-skipping: masked columns are hidden from the *input*
        while every column is still predicted at the output.
        """
        x = self.encode(binned_rows, input_mask)
        logits = self.forward(x)
        grad = np.zeros_like(logits)
        total = 0.0
        for i in range(len(self.cardinalities)):
            sl = slice(int(self._offsets[i]), int(self._offsets[i + 1]))
            loss_i, grad_i = softmax_cross_entropy(
                logits[:, sl], binned_rows[:, i].astype(np.int64)
            )
            total += loss_i
            grad[:, sl] = grad_i
        return total, grad
