"""Transformer autoregressive density model (Naru's second block choice).

The column values are embedded tokens; a learned start-of-sequence token
shifts the sequence so position ``i``'s output — after strictly causal
self-attention — depends only on columns ``< i`` and predicts column
``i``'s distribution.  The model exposes the same training/inference
interface as :class:`repro.nn.made.ResMade` (``nll_step``, ``backward``,
``conditional_from_bins``), so :class:`~repro.estimators.learned.naru.
NaruEstimator` can run progressive sampling over either block.
"""

from __future__ import annotations

import numpy as np

from .attention import CausalSelfAttention, Embedding, LayerNorm
from .layers import Linear, Module, Parameter, ReLU
from .loss import softmax, softmax_cross_entropy


class _TransformerBlock(Module):
    """Pre-norm block: attention + MLP, both residual."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        self.norm1 = LayerNorm(dim)
        self.attention = CausalSelfAttention(dim, num_heads, rng)
        self.norm2 = LayerNorm(dim)
        self.mlp_in = Linear(dim, 4 * dim, rng)
        self.relu = ReLU()
        self.mlp_out = Linear(4 * dim, dim, rng)
        self._shape: tuple[int, ...] | None = None

    def parameters(self) -> list[Parameter]:
        return (
            self.norm1.parameters()
            + self.attention.parameters()
            + self.norm2.parameters()
            + self.mlp_in.parameters()
            + self.mlp_out.parameters()
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        h = x + self.attention.forward(self.norm1.forward(x))
        b, t, d = h.shape
        flat = self.relu.forward(self.mlp_in.forward(
            self.norm2.forward(h).reshape(-1, d)
        ))
        return h + self.mlp_out.forward(flat).reshape(b, t, d)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, t, d = self._shape  # type: ignore[misc]
        g_flat = self.mlp_out.backward(grad.reshape(-1, d))
        g_flat = self.mlp_in.backward(self.relu.backward(g_flat))
        grad_h = grad + self.norm2.backward(g_flat.reshape(b, t, d))
        grad_x = grad_h + self.norm1.backward(self.attention.backward(grad_h))
        return grad_x


class TransformerAR(Module):
    """Autoregressive Transformer over discretised columns."""

    def __init__(
        self,
        cardinalities: list[int],
        dim: int = 32,
        num_heads: int = 4,
        num_blocks: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        if len(cardinalities) < 1:
            raise ValueError("need at least one column")
        self.cardinalities = list(cardinalities)
        self.dim = dim
        n = len(cardinalities)
        self.value_embeddings = [Embedding(k, dim, rng) for k in cardinalities]
        self.position_embedding = Parameter(
            rng.normal(scale=0.05, size=(n, dim))
        )
        self.start_token = Parameter(rng.normal(scale=0.05, size=dim))
        self.blocks = [_TransformerBlock(dim, num_heads, rng) for _ in range(num_blocks)]
        self.final_norm = LayerNorm(dim)
        self.heads = [Linear(dim, k, rng) for k in cardinalities]
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = [self.position_embedding, self.start_token]
        for emb in self.value_embeddings:
            params += emb.parameters()
        for block in self.blocks:
            params += block.parameters()
        params += self.final_norm.parameters()
        for head in self.heads:
            params += head.parameters()
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def _token_sequence(self, binned: np.ndarray) -> np.ndarray:
        """(B, n, dim): SOS + embeddings of columns 0..n-2, plus positions."""
        batch, n = binned.shape
        tokens = np.empty((batch, n, self.dim))
        tokens[:, 0, :] = self.start_token.value
        for col in range(n - 1):
            tokens[:, col + 1, :] = self.value_embeddings[col].forward(
                binned[:, col]
            )
        return tokens + self.position_embedding.value[None, :, :]

    def _hidden_states(self, binned: np.ndarray) -> np.ndarray:
        h = self._token_sequence(binned)
        for block in self.blocks:
            h = block.forward(h)
        return self.final_norm.forward(h)

    def forward(self, binned: np.ndarray) -> np.ndarray:
        """Hidden states (B, n, dim); use :meth:`column_logits` to read."""
        binned = np.asarray(binned, dtype=np.int64)
        hidden = self._hidden_states(binned)
        self._cache = {"hidden": hidden, "binned": binned}
        return hidden

    def column_logits(self, hidden: np.ndarray, column: int) -> np.ndarray:
        return self.heads[column].forward(hidden[:, column, :])

    # ------------------------------------------------------------------
    def nll_step(self, binned: np.ndarray) -> tuple[float, np.ndarray]:
        """NLL of a batch and the gradient w.r.t. the hidden states."""
        binned = np.asarray(binned, dtype=np.int64)
        hidden = self.forward(binned)
        grad_hidden = np.zeros_like(hidden)
        total = 0.0
        for col, head in enumerate(self.heads):
            logits = head.forward(hidden[:, col, :])
            loss, grad_logits = softmax_cross_entropy(logits, binned[:, col])
            total += loss
            grad_hidden[:, col, :] = head.backward(grad_logits)
        return total, grad_hidden

    def backward(self, grad_hidden: np.ndarray) -> np.ndarray:
        grad = self.final_norm.backward(grad_hidden)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        # Token gradients: positions, SOS and value embeddings.
        self.position_embedding.grad += grad.sum(axis=0)
        self.start_token.grad += grad[:, 0, :].sum(axis=0)
        binned = self._cache["binned"]
        for col in range(len(self.cardinalities) - 1):
            # Re-register indices so the embedding's scatter-add works.
            self.value_embeddings[col].forward(binned[:, col])
            self.value_embeddings[col].backward(grad[:, col + 1, :])
        return grad

    # ------------------------------------------------------------------
    def conditional_from_bins(
        self, prefix_bins: np.ndarray, column: int
    ) -> np.ndarray:
        """``P(x_column | x_<column)`` for a batch of prefixes.

        ``prefix_bins`` is (B, n) integer bins; only columns ``< column``
        are read (later entries may hold anything in range).
        """
        hidden = self._hidden_states(np.asarray(prefix_bins, dtype=np.int64))
        logits = self.heads[column].forward(hidden[:, column, :])
        return softmax(logits)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()
