"""Minimal neural-network substrate (numpy, manual backprop).

Replaces PyTorch for the paper's neural estimators; see DESIGN.md
(substitutions table).
"""

from .attention import CausalSelfAttention, Embedding, LayerNorm
from .layers import Linear, MaskedLinear, Module, Parameter, ReLU, Sequential
from .loss import mse_loss, qerror_loss, softmax, softmax_cross_entropy
from .made import ResMade, ResMadeBlock
from .optim import SGD, Adam, global_grad_norm
from .transformer import TransformerAR

__all__ = [
    "Adam",
    "CausalSelfAttention",
    "Embedding",
    "LayerNorm",
    "Linear",
    "MaskedLinear",
    "Module",
    "Parameter",
    "ReLU",
    "ResMade",
    "ResMadeBlock",
    "SGD",
    "Sequential",
    "TransformerAR",
    "global_grad_norm",
    "mse_loss",
    "qerror_loss",
    "softmax",
    "softmax_cross_entropy",
]
