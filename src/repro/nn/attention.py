"""Sequence primitives for the Transformer autoregressive block:
embeddings, layer normalisation and causal multi-head self-attention,
all with manual backprop.

Naru's paper considers both MADE and Transformer [Vaswani et al. 2017]
as autoregressive building blocks; these primitives power the
Transformer variant (:mod:`repro.nn.transformer`).
"""

from __future__ import annotations

import numpy as np

from .layers import Module, Parameter


class Embedding(Module):
    """Lookup table ``(num_embeddings, dim)`` with scatter-add gradients."""

    def __init__(
        self, num_embeddings: int, dim: int, rng: np.random.Generator
    ) -> None:
        self.table = Parameter(rng.normal(scale=0.05, size=(num_embeddings, dim)))
        self._indices: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.table]

    def forward(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min() < 0 or indices.max() >= self.table.value.shape[0]:
            raise ValueError("embedding index out of range")
        self._indices = indices
        return self.table.value[indices]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._indices is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.table.grad, self._indices.ravel(),
                  grad.reshape(-1, grad.shape[-1]))
        return np.zeros(self._indices.shape)  # indices carry no gradient


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, epsilon: float = 1e-5) -> None:
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.epsilon = epsilon
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def parameters(self) -> list[Parameter]:
        return [self.gain, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normed = (x - mean) * inv_std
        self._cache = (normed, inv_std, x)
        return normed * self.gain.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normed, inv_std, x = self._cache
        self.gain.grad += np.sum(grad * normed, axis=tuple(range(grad.ndim - 1)))
        self.bias.grad += np.sum(grad, axis=tuple(range(grad.ndim - 1)))
        d = x.shape[-1]
        g = grad * self.gain.value
        # Standard layer-norm backward.
        return inv_std * (
            g
            - g.mean(axis=-1, keepdims=True)
            - normed * (g * normed).mean(axis=-1, keepdims=True)
        )


def _stable_softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class CausalSelfAttention(Module):
    """Multi-head self-attention with a strict causal mask.

    Input/output shape ``(batch, seq, dim)``.  Position ``t`` attends to
    positions ``<= t``.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        scale = 1.0 / np.sqrt(dim)
        self.w_query = Parameter(rng.normal(scale=scale, size=(dim, dim)))
        self.w_key = Parameter(rng.normal(scale=scale, size=(dim, dim)))
        self.w_value = Parameter(rng.normal(scale=scale, size=(dim, dim)))
        self.w_out = Parameter(rng.normal(scale=scale, size=(dim, dim)))
        self._cache: dict[str, np.ndarray] = {}

    def parameters(self) -> list[Parameter]:
        return [self.w_query, self.w_key, self.w_value, self.w_out]

    # -- helpers ---------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, t, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * hd)

    # -- forward / backward ----------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        b, t, d = x.shape
        q = self._split_heads(x @ self.w_query.value)
        k = self._split_heads(x @ self.w_key.value)
        v = self._split_heads(x @ self.w_value.value)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        mask = np.triu(np.full((t, t), -np.inf), k=1)
        attn = _stable_softmax(scores + mask)
        context = attn @ v  # (b, h, t, hd)
        merged = self._merge_heads(context)
        self._cache = {"x": x, "q": q, "k": k, "v": v, "attn": attn,
                       "merged": merged}
        return merged @ self.w_out.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        c = self._cache
        if not c:
            raise RuntimeError("backward called before forward")
        x, q, k, v, attn, merged = (
            c["x"], c["q"], c["k"], c["v"], c["attn"], c["merged"]
        )
        b, t, d = x.shape
        flat = merged.reshape(-1, d)
        self.w_out.grad += flat.T @ grad.reshape(-1, d)
        d_merged = grad @ self.w_out.value.T
        d_context = self._split_heads(d_merged)

        d_attn = d_context @ v.transpose(0, 1, 3, 2)
        d_v = attn.transpose(0, 1, 3, 2) @ d_context
        # Softmax backward (rows of attn sum to 1).
        d_scores = attn * (d_attn - np.sum(d_attn * attn, axis=-1, keepdims=True))
        d_scores /= np.sqrt(self.head_dim)
        d_q = d_scores @ k
        d_k = d_scores.transpose(0, 1, 3, 2) @ q

        d_q_flat = self._merge_heads(d_q).reshape(-1, d)
        d_k_flat = self._merge_heads(d_k).reshape(-1, d)
        d_v_flat = self._merge_heads(d_v).reshape(-1, d)
        x_flat = x.reshape(-1, d)
        self.w_query.grad += x_flat.T @ d_q_flat
        self.w_key.grad += x_flat.T @ d_k_flat
        self.w_value.grad += x_flat.T @ d_v_flat
        d_x = (
            d_q_flat @ self.w_query.value.T
            + d_k_flat @ self.w_key.value.T
            + d_v_flat @ self.w_value.value.T
        ).reshape(b, t, d)
        return d_x
