"""Loss functions used by the learned estimators.

* LW-NN minimises the mean squared error of the log-transformed label
  (paper Section 2.3), which "equals minimizing the geometric mean of
  q-error with more weights on larger errors".
* MSCN minimises the mean q-error directly.  Since
  ``qerror = exp(|log(est) - log(act)|)`` for positive quantities, the
  q-error loss is differentiable almost everywhere in log space.
* Naru maximises data likelihood, i.e. minimises per-column softmax
  cross-entropy.
"""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def qerror_loss(
    log_pred: np.ndarray, log_target: np.ndarray, clip: float = 30.0
) -> tuple[float, np.ndarray]:
    """Mean q-error loss in log space, and its gradient w.r.t. ``log_pred``.

    ``qerror = exp(|log_pred - log_target|)``.  The exponent is clipped to
    keep early-training gradients finite (matching the numerical guard in
    MSCN's released code, which clamps predictions).
    """
    diff = np.clip(log_pred - log_target, -clip, clip)
    q = np.exp(np.abs(diff))
    loss = float(np.mean(q))
    grad = np.sign(diff) * q / diff.size
    return loss, grad


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of integer ``targets`` under row-wise softmax.

    Returns the loss and its gradient w.r.t. ``logits`` (already divided
    by the batch size).
    """
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    n = logits.shape[0]
    probs = softmax(logits)
    picked = probs[np.arange(n), targets]
    floor = np.finfo(picked.dtype).tiny  # dtype-aware log(0) guard
    loss = float(-np.mean(np.log(np.maximum(picked, floor))))
    grad = probs
    grad[np.arange(n), targets] -= 1.0
    grad /= n
    return loss, grad
