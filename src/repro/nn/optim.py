"""Optimizers for the minimal neural-network substrate."""

from __future__ import annotations

import numpy as np

from .layers import Parameter


class Adam:
    """Adam [Kingma & Ba 2015] with the standard bias correction.

    All three of the paper's neural estimators (Naru, MSCN, LW-NN) are
    trained with Adam in their original implementations.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.value -= self.learning_rate * (m / bc1) / (np.sqrt(v / bc2) + self.epsilon)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


def global_grad_norm(parameters: list[Parameter]) -> float:
    """L2 norm over every parameter's accumulated gradient.

    Training loops report this to the :class:`~repro.obs.TrainingMonitor`
    (gradient-norm drift is the classic early symptom of a diverging
    learned estimator); call it after ``backward`` and before the next
    ``zero_grad``.
    """
    total = 0.0
    for p in parameters:
        total += float(np.sum(p.grad * p.grad))
    return float(np.sqrt(total))


class SGD:
    """Plain stochastic gradient descent (used in tests as a reference)."""

    def __init__(self, parameters: list[Parameter], learning_rate: float = 1e-2) -> None:
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self.parameters = parameters
        self.learning_rate = learning_rate

    def step(self) -> None:
        for p in self.parameters:
            p.value -= self.learning_rate * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
