"""Optimizers for the minimal neural-network substrate."""

from __future__ import annotations

import numpy as np

from .layers import Parameter


class Adam:
    """Adam [Kingma & Ba 2015] with the standard bias correction.

    All three of the paper's neural estimators (Naru, MSCN, LW-NN) are
    trained with Adam in their original implementations.

    The default ``fused=True`` step performs every array operation
    in-place through two preallocated scratch buffers, eliminating the
    seven per-parameter temporaries the naive expression allocates each
    step.  Both paths execute the identical sequence of IEEE operations
    (the fused form only reassociates multiplications, which commute
    bitwise), so fused and unfused steps are **bit-identical**; the
    unfused path is kept as the readable reference and for the
    equivalence test in ``tests/test_nn.py``.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        fused: bool = True,
    ) -> None:
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.fused = fused
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]
        self._scratch = [np.empty_like(p.value) for p in parameters]
        self._scratch2 = [np.empty_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        if not self.fused:
            for p, m, v in zip(self.parameters, self._m, self._v):
                m *= self.beta1
                m += (1.0 - self.beta1) * p.grad
                v *= self.beta2
                v += (1.0 - self.beta2) * p.grad**2
                p.value -= self.learning_rate * (m / bc1) / (np.sqrt(v / bc2) + self.epsilon)
            return
        for p, m, v, s, s2 in zip(
            self.parameters, self._m, self._v, self._scratch, self._scratch2
        ):
            grad = p.grad
            # m <- beta1*m + (1-beta1)*grad, in place
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=s)
            m += s
            # v <- beta2*v + (1-beta2)*grad^2, in place
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=s)
            s *= 1.0 - self.beta2
            v += s
            # p <- p - lr * (m/bc1) / (sqrt(v/bc2) + eps), in place
            np.divide(v, bc2, out=s)
            np.sqrt(s, out=s)
            s += self.epsilon
            np.divide(m, bc1, out=s2)
            s2 *= self.learning_rate
            s2 /= s
            p.value -= s2

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    # ------------------------------------------------------------------
    # Checkpointable state (see repro.lifecycle): the moment vectors and
    # the step count are the whole of Adam's mutable state beyond the
    # parameters themselves, so capturing them lets a resumed training
    # run continue bit-for-bit where an interrupted one stopped.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable optimizer state (moments copied, not aliased)."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        m, v = state["m"], state["v"]
        if len(m) != len(self.parameters) or len(v) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(m)} moment vectors for "
                f"{len(self.parameters)} parameters"
            )
        for p, m_i, v_i in zip(self.parameters, m, v):
            if m_i.shape != p.value.shape or v_i.shape != p.value.shape:
                raise ValueError(
                    f"moment shape {m_i.shape} does not match parameter "
                    f"shape {p.value.shape}"
                )
        self._t = int(state["t"])
        # Moments adopt each parameter's dtype (a float32 model keeps
        # float32 moments through a save/load cycle, never upcast).
        self._m = [
            np.array(m_i, dtype=p.value.dtype)
            for p, m_i in zip(self.parameters, m)
        ]
        self._v = [
            np.array(v_i, dtype=p.value.dtype)
            for p, v_i in zip(self.parameters, v)
        ]


def global_grad_norm(parameters: list[Parameter]) -> float:
    """L2 norm over every parameter's accumulated gradient.

    Training loops report this to the :class:`~repro.obs.TrainingMonitor`
    (gradient-norm drift is the classic early symptom of a diverging
    learned estimator); call it after ``backward`` and before the next
    ``zero_grad``.
    """
    total = 0.0
    for p in parameters:
        total += float(np.sum(p.grad * p.grad))
    return float(np.sqrt(total))


class SGD:
    """Plain stochastic gradient descent (used in tests as a reference)."""

    def __init__(self, parameters: list[Parameter], learning_rate: float = 1e-2) -> None:
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self.parameters = parameters
        self.learning_rate = learning_rate

    def step(self) -> None:
        for p in self.parameters:
            p.value -= self.learning_rate * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
