"""Confidence-gated distillation: a GBDT student for a slow nn teacher.

LW-XGB is the paper's cheapest accurate learner (Figure 4: microsecond
inference, no network forward), so the fast path distills the expensive
data-driven teachers (naru, mscn) into an lw-xgb-style student: the
teacher labels a generated predicate workload, and a
:class:`~repro.gbdt.GradientBoostedTrees` regressor fits the teacher's
*log* outputs over :class:`~repro.estimators.learned.featurize.LwFeaturizer`
features.

Distillation is lossy in the tails, so the student never serves alone.
A second, smaller GBDT — the **confidence model** — is fit on held-out
distillation queries to predict the absolute log residual between
student and teacher (i.e. the log of their q-error).  At inference the
student answers only when its predicted band is narrow; wide-band
queries fall back to the teacher, with both outcomes counted under
``repro_fastpath_student_total``.  The band threshold is in log space:
``band_threshold=log(4)`` means "fall back whenever the student is
predicted to be more than 4x off the teacher".

Deployment goes through the lifecycle gate: :func:`distill_into_service`
evaluates the student against the serving primary with a
:class:`~repro.lifecycle.PromotionGate` and only hot-swaps on PASS — a
regressed student never ships, the incumbent keeps serving, and the
estimate cache keeps its generation (no spurious invalidation).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Query
from ..core.table import Table
from ..core.workload import Workload, WorkloadConfig, WorkloadGenerator
from ..estimators.learned.featurize import LwFeaturizer
from ..gbdt import GradientBoostedTrees
from ..lifecycle.gate import GateReport, PromotionGate
from ..obs import get_events, get_registry
from ..obs.metrics import FASTPATH_STUDENT

#: label clamp matching the nn estimators' exp() guard
LOG_CLIP = 30.0


@dataclass(frozen=True)
class DistillReport:
    """What the distillation run produced."""

    teacher: str
    num_queries: int
    holdout_queries: int
    #: p95 of |log student - log teacher| on the holdout split
    holdout_p95_log_residual: float
    #: fraction of holdout queries the confidence gate sends to the teacher
    holdout_fallback_fraction: float
    student_size_bytes: int
    teacher_size_bytes: int


class DistilledStudent(CardinalityEstimator):
    """GBDT student serving behind a confidence gate, teacher fallback.

    ``fit`` ignores any workload labels: the only supervision is the
    teacher's answers over a workload generated from the table (the
    paper's unified recipe).  The teacher must already be fitted.
    """

    name = "student"

    def __init__(
        self,
        teacher: CardinalityEstimator,
        num_queries: int = 2000,
        holdout_fraction: float = 0.25,
        num_trees: int = 64,
        confidence_trees: int = 24,
        max_depth: int = 6,
        learning_rate: float = 0.15,
        band_threshold: float = math.log(4.0),
        use_ce_features: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_queries < 8:
            raise ValueError("distillation needs at least 8 workload queries")
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if band_threshold <= 0.0:
            raise ValueError("band_threshold must be positive (log-space)")
        self.teacher = teacher
        self.num_queries = num_queries
        self.holdout_fraction = holdout_fraction
        self.num_trees = num_trees
        self.confidence_trees = confidence_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.band_threshold = band_threshold
        self.use_ce_features = use_ce_features
        self.seed = seed
        self._featurizer: LwFeaturizer | None = None
        self._student: GradientBoostedTrees | None = None
        self._confidence: GradientBoostedTrees | None = None
        self.report: DistillReport | None = None

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        rng = np.random.default_rng(self.seed)
        generator = WorkloadGenerator(table, WorkloadConfig())
        queries = [generator.generate_query(rng) for _ in range(self.num_queries)]
        teacher_est = np.asarray(self.teacher.estimate_many(queries), dtype=np.float32)
        log_teacher = np.log(np.maximum(teacher_est, np.float32(1e-9)))

        self._featurizer = LwFeaturizer(table, self.use_ce_features)
        features = self._featurizer.features_many(queries)

        n_holdout = max(2, int(round(self.num_queries * self.holdout_fraction)))
        order = rng.permutation(self.num_queries)
        train_idx, hold_idx = order[n_holdout:], order[:n_holdout]

        self._student = GradientBoostedTrees(
            num_trees=self.num_trees,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            monitor_label=self.name,
        ).fit(features[train_idx], log_teacher[train_idx])

        # The confidence model learns |log residual| on queries the
        # student did NOT train on — train-set residuals flatter the
        # student and would leave the gate blind to real divergence.
        hold_pred = self._student.predict(features[hold_idx])
        hold_residual = np.abs(hold_pred - log_teacher[hold_idx])
        self._confidence = GradientBoostedTrees(
            num_trees=self.confidence_trees,
            learning_rate=self.learning_rate,
            max_depth=max(2, self.max_depth - 2),
            monitor_label=f"{self.name}-confidence",
        ).fit(features[hold_idx], hold_residual)

        band = self._confidence.predict(features[hold_idx])
        self.report = DistillReport(
            teacher=self.teacher.name,
            num_queries=self.num_queries,
            holdout_queries=int(hold_idx.size),
            holdout_p95_log_residual=float(np.percentile(hold_residual, 95.0)),
            holdout_fallback_fraction=float(np.mean(band > self.band_threshold)),
            student_size_bytes=self._model_only_size_bytes(),
            teacher_size_bytes=self.teacher.model_size_bytes(),
        )

    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Re-distill against the (already updated) teacher."""
        self._fit(table, workload)

    # ------------------------------------------------------------------
    def _predicted_bands(self, features: np.ndarray) -> np.ndarray:
        assert self._confidence is not None
        return self._confidence.predict(features)

    def _estimate(self, query: Query) -> float:
        values = self._estimate_batch([query])
        return float(values[0])

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        assert self._featurizer is not None and self._student is not None
        queries = list(queries)
        features = self._featurizer.features_many(queries)
        bands = self._predicted_bands(features)
        wide = bands > self.band_threshold
        log_pred = self._student.predict(features)
        out = np.exp(np.clip(log_pred, -LOG_CLIP, LOG_CLIP))
        n_wide = int(np.count_nonzero(wide))
        if n_wide:
            wide_queries = [q for q, w in zip(queries, wide) if w]
            out[wide] = self.teacher.estimate_many(wide_queries)
        counter = get_registry().counter(
            FASTPATH_STUDENT, "Student-tier answers, by who served"
        )
        counter.inc(len(queries) - n_wide, outcome="student")
        if n_wide:
            counter.inc(n_wide, outcome="teacher")
        return out

    # ------------------------------------------------------------------
    def _model_only_size_bytes(self) -> int:
        """Packed size of the two GBDTs (24 bytes/node, as lw-xgb)."""
        total = 0
        if self._student is not None:
            total += 24 * self._student.num_nodes()
        if self._confidence is not None:
            total += 24 * self._confidence.num_nodes()
        return total

    def model_size_bytes(self) -> int:
        return self._model_only_size_bytes()

    @property
    def fallback_fraction(self) -> float:
        """Held-out estimate of how often the teacher still answers."""
        return self.report.holdout_fallback_fraction if self.report else 1.0


def distill_into_service(
    service,
    table: Table,
    *,
    gate: PromotionGate,
    student: DistilledStudent | None = None,
    **student_kwargs,
) -> tuple[DistilledStudent, GateReport]:
    """Distill the serving primary and promote the student only on PASS.

    Builds a :class:`DistilledStudent` from ``service.primary_estimator``
    (unless a pre-built ``student`` is supplied), fits it on ``table``,
    and runs the lifecycle :class:`PromotionGate` against the incumbent.
    On PASS the student hot-swaps in via ``replace_primary`` (which bumps
    the cache generation); on FAIL the service is left untouched — the
    teacher keeps serving and cached answers stay valid.  Both outcomes
    emit a ``fastpath.student_*`` event carrying the gate verdict.
    """
    teacher = service.primary_estimator
    if student is None:
        student = DistilledStudent(teacher, **student_kwargs)
    student.fit(table)
    report = gate.evaluate(student, teacher, table)
    if report.passed:
        service.replace_primary(student)
        get_events().emit(
            "fastpath.student_promoted",
            teacher=teacher.name,
            candidate_p95=report.candidate_p95,
            incumbent_p95=report.incumbent_p95,
        )
    else:
        get_events().emit(
            "fastpath.student_rejected",
            teacher=teacher.name,
            reasons="; ".join(report.reasons),
            candidate_p95=report.candidate_p95,
            incumbent_p95=report.incumbent_p95,
        )
    return student, report
