"""Post-training int8 quantization for the nn estimators.

The paper's verdict on production readiness (Figure 4) is that learned
estimators pay their accuracy with inference cost; "Is It Bigger than a
Breadbox" and ByteCard (PAPERS.md) both argue the estimator must be
cheap enough for the optimizer's critical path.  This module shrinks a
*fitted* model's dense weights to int8 with **per-output-channel affine
quantization** and serves them through a dequantize-on-the-fly matmul —
the packed weights are the only copy kept, so the memory footprint (and
the bytes streamed per matmul) drop ~4x against the float32 path and
~8x against the reference precision.

Scheme (per output channel ``j`` of a ``(in, out)`` weight matrix):

* the representable range ``[lo_j, hi_j]`` is the channel's min/max
  **widened to include 0.0** — so an exactly-zero weight (every masked
  MADE connection) round-trips to exactly zero and the autoregressive
  property survives quantization bit-for-bit;
* ``scale_j = (hi_j - lo_j) / 255`` maps the range onto the 256 int8
  codes, and ``zero_point_j = rint(-128 - lo_j / scale_j)`` is the
  integer code of 0.0 (integral by construction, hence the exact zero);
* ``q = clip(rint(w / scale + zero_point), -128, 127)`` and
  ``dequant(q) = (q - zero_point) * scale``.

Rounding to the nearest code bounds the per-element round-trip error by
``scale_j / 2`` — the invariant `tests/test_fastpath_properties.py`
asserts over seeded random matrices.

The matmul never materialises a dequantized weight matrix: for affine
codes, ``x @ dequant(Q) == (x @ Q - sum(x) * zero_point) * scale``
(per-output-channel ``scale``/``zero_point`` broadcast over the output
axis), so the kernel is one int8->float32 cast feeding the BLAS sgemm
plus a rank-one correction.  Everything in this tier computes in
float32; `tests/test_lint.py` bans the double-precision dtype from this
package outright.

The packed ``q`` code matrices are plain int8 ndarrays, so
:class:`repro.shard.shm.ModelArena` publishes them **as-is** into its
shared-memory tensor region (~4x smaller segments than the float32
teacher) and workers serve straight off read-only int8 views — every
kernel here only ever reads the codes (casts, gathers, matmuls), never
writes them, which is exactly the contract an arena attachment needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import Linear, MaskedLinear, Module, Sequential
from ..nn.loss import softmax
from ..nn.made import ResMade

#: int8 code range (full range; the zero code is exact by construction).
QMIN = -128
QMAX = 127
#: number of representable steps across a channel's [lo, hi] range
QSTEPS = float(QMAX - QMIN)

F32 = np.float32


@dataclass(frozen=True)
class QuantizedTensor:
    """Packed int8 codes + per-output-channel affine parameters."""

    q: np.ndarray  #: int8 codes, same shape as the source weight
    scale: np.ndarray  #: float32, one per output channel (last axis)
    zero_point: np.ndarray  #: int8 code of 0.0, one per output channel

    @property
    def size_bytes(self) -> int:
        return int(self.q.nbytes + self.scale.nbytes + self.zero_point.nbytes)

    def dequantize(self) -> np.ndarray:
        """Materialise the float32 weights (tests / inspection only)."""
        zp = self.zero_point.astype(F32)
        return (self.q.astype(F32) - zp) * self.scale

    def rows(self, idx: np.ndarray) -> np.ndarray:
        """Dequantized gather of weight rows (the sparse MADE kernel)."""
        zp = self.zero_point.astype(F32)
        return (self.q[idx].astype(F32) - zp) * self.scale

    def column_slice(self, lo: int, hi: int) -> np.ndarray:
        """Dequantized slice of output channels ``lo:hi``."""
        zp = self.zero_point[lo:hi].astype(F32)
        return (self.q[:, lo:hi].astype(F32) - zp) * self.scale[lo:hi]


def quantize_per_channel(weight: np.ndarray) -> QuantizedTensor:
    """Quantize a ``(in, out)`` weight matrix channel-wise (last axis).

    The channel range is widened to include 0.0 so exact zeros (masked
    connections) stay exact; degenerate all-zero channels get unit scale.
    """
    w = np.asarray(weight, dtype=F32)
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {w.shape}")
    lo = np.minimum(w.min(axis=0), F32(0.0))
    hi = np.maximum(w.max(axis=0), F32(0.0))
    span = hi - lo
    scale = np.where(span > 0.0, span / F32(QSTEPS), F32(1.0)).astype(F32)
    zero_point = np.clip(np.rint(QMIN - lo / scale), QMIN, QMAX).astype(np.int8)
    codes = np.rint(w / scale + zero_point.astype(F32))
    q = np.clip(codes, QMIN, QMAX).astype(np.int8)
    return QuantizedTensor(q=q, scale=scale, zero_point=zero_point)


def qmatmul(x: np.ndarray, qt: QuantizedTensor) -> np.ndarray:
    """``x @ dequant(qt)`` without materialising the dequantized matrix.

    The affine offset factors out of the matmul:
    ``x @ ((Q - zp) * s) == (x @ Q - sum(x) * zp) * s`` with ``s``/``zp``
    broadcast over output channels.
    """
    x = np.asarray(x, dtype=F32)
    acc = x @ qt.q.astype(F32)
    correction = x.sum(axis=-1, keepdims=True) * qt.zero_point.astype(F32)
    return (acc - correction) * qt.scale


class QuantizedLinear(Module):
    """Inference-only stand-in for a fitted :class:`Linear`.

    Holds the packed weights and a float32 bias; ``backward`` raises —
    a quantized model is a deployment artifact, not a training state.
    """

    def __init__(self, qt: QuantizedTensor, bias: np.ndarray) -> None:
        self.qt = qt
        self.bias = np.asarray(bias, dtype=F32)

    @classmethod
    def from_linear(cls, layer: Linear | MaskedLinear) -> "QuantizedLinear":
        return cls(quantize_per_channel(layer.weight.value), layer.bias.value)

    @property
    def size_bytes(self) -> int:
        return self.qt.size_bytes + int(self.bias.nbytes)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return qmatmul(x, self.qt) + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise RuntimeError(
            "QuantizedLinear is inference-only; refit a fresh estimator to train"
        )


def quantize_sequential(seq: Sequential) -> Sequential:
    """Replace every dense layer of a fitted ``Sequential`` in place."""
    for i, module in enumerate(seq.modules):
        if isinstance(module, (Linear, MaskedLinear)):
            seq.modules[i] = QuantizedLinear.from_linear(module)
    return seq


def module_size_bytes(module: Module) -> int:
    """Model footprint honouring packed weights where present."""
    if isinstance(module, QuantizedLinear):
        return module.size_bytes
    if isinstance(module, Sequential):
        return sum(module_size_bytes(m) for m in module.modules)
    return sum(p.value.nbytes for p in module.parameters())


def is_quantized(module: Module) -> bool:
    """True when any layer of ``module`` holds packed weights."""
    if isinstance(module, QuantizedLinear):
        return True
    if isinstance(module, Sequential):
        return any(is_quantized(m) for m in module.modules)
    return False


class QuantizedResMade:
    """Packed-weight ResMADE exposing Naru's two inference kernels.

    Naru's progressive sampler reads the network through exactly two
    methods — :meth:`conditional_from_bins` (the scalar/dense path) and
    :meth:`conditional_sparse` (the batched row-gather path, see
    ``ResMade.conditional_sparse``) — so the quantized twin implements
    just those against :class:`QuantizedTensor` kernels.  The masked
    autoregressive structure survives because quantization preserves
    exact zeros (see :func:`quantize_per_channel`), so a masked
    connection stays severed in the packed codes.

    Training methods are deliberately absent: quantization is a one-way
    deployment step.
    """

    def __init__(
        self,
        cardinalities: list[int],
        offsets: np.ndarray,
        input_qt: QuantizedTensor,
        input_bias: np.ndarray,
        blocks: list[tuple[QuantizedTensor, np.ndarray]],
        output_qt: QuantizedTensor,
        output_bias: np.ndarray,
    ) -> None:
        self.cardinalities = list(cardinalities)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self.input_qt = input_qt
        self.input_bias = np.asarray(input_bias, dtype=F32)
        self.blocks = [
            (qt, np.asarray(bias, dtype=F32)) for qt, bias in blocks
        ]
        self.output_qt = output_qt
        self.output_bias = np.asarray(output_bias, dtype=F32)

    @classmethod
    def from_resmade(cls, made: ResMade) -> "QuantizedResMade":
        return cls(
            cardinalities=made.cardinalities,
            offsets=made._offsets,
            input_qt=quantize_per_channel(made.input_layer.weight.value),
            input_bias=made.input_layer.bias.value,
            blocks=[
                (
                    quantize_per_channel(block.linear.weight.value),
                    block.linear.bias.value,
                )
                for block in made.blocks
            ],
            output_qt=quantize_per_channel(made.output_layer.weight.value),
            output_bias=made.output_layer.bias.value,
        )

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        total = self.input_qt.size_bytes + self.input_bias.nbytes
        for qt, bias in self.blocks:
            total += qt.size_bytes + bias.nbytes
        total += self.output_qt.size_bytes + self.output_bias.nbytes
        return int(total)

    def parameters(self) -> list:
        """No trainable parameters: the packed codes are frozen."""
        return []

    # ------------------------------------------------------------------
    def _hidden_from_dense(self, x: np.ndarray) -> np.ndarray:
        h = qmatmul(x, self.input_qt) + self.input_bias
        h = np.where(h > 0.0, h, F32(0.0))
        return self._through_blocks(h)

    def _through_blocks(self, h: np.ndarray) -> np.ndarray:
        for qt, bias in self.blocks:
            z = qmatmul(h, qt) + bias
            h = h + np.where(z > 0.0, z, F32(0.0))
        return h

    def _column_distribution(self, h: np.ndarray, column: int) -> np.ndarray:
        lo, hi = int(self._offsets[column]), int(self._offsets[column + 1])
        w_out = self.output_qt.column_slice(lo, hi)
        return softmax(h @ w_out + self.output_bias[lo:hi])

    def conditional_from_bins(
        self,
        prefix_bins: np.ndarray,
        column: int,
        present: np.ndarray | None = None,
    ) -> np.ndarray:
        """``P(x_column | x_<column)`` via the dense one-hot path."""
        prefix_bins = np.asarray(prefix_bins, dtype=np.int64)
        batch = prefix_bins.shape[0]
        x = np.zeros((batch, int(self._offsets[-1])), dtype=F32)
        rows = np.arange(batch)
        for i in range(column):
            if present is None or present[i]:
                x[rows, self._offsets[i] + prefix_bins[:, i]] = 1.0
        return self._column_distribution(self._hidden_from_dense(x), column)

    def conditional_sparse(
        self,
        prefix_bins: np.ndarray,
        column: int,
        present: np.ndarray | None = None,
    ) -> np.ndarray:
        """Row-gather variant: dequantize only the selected weight rows."""
        prefix_bins = np.asarray(prefix_bins, dtype=np.int64)
        batch = prefix_bins.shape[0]
        h = np.broadcast_to(
            self.input_bias, (batch, self.input_bias.shape[0])
        ).astype(F32)
        for i in range(column):
            if present is None or present[i]:
                h = h + self.input_qt.rows(self._offsets[i] + prefix_bins[:, i])
        h = np.where(h > 0.0, h, F32(0.0))
        h = self._through_blocks(h)
        return self._column_distribution(h, column)
