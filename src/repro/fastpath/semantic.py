"""Semantic estimate cache: answer subset queries from cached supersets.

The serving tier's :class:`~repro.serve.cache.EstimateCache` only ever
answers an *exact* repeat of a cached query.  Real dashboards drill
down: the follow-up query is the same conjunctive rectangle with one or
more sides tightened.  Under the repo's predicate model (Section 2.1 —
a query is a conjunction of per-column intervals, at most one per
column), containment is decidable per column:

    Q_sub ⊆ Q_sup  ⇐  every predicate of Q_sup contains Q_sub's
                       predicate on that column (interval containment),
                       and Q_sup constrains no column Q_sub leaves free.

Interval containment implies row containment — any row satisfying the
tighter interval satisfies the wider one — and a column Q_sup does not
constrain admits every row, so the implication is *sound*: the subset
query's true cardinality can never exceed the superset's.  (It is
deliberately one-directional; the checker never needs to prove
equality.)  ``tests/test_fastpath_properties.py`` brute-forces this
against row-level evaluation over a thousand seeded predicate pairs.

On an exact-key miss the cache scans its current-generation entries
(most recent first, up to ``scan_limit``) for a cached superset and
serves a **monotonicity-bounded** answer: the cached estimate scaled by
the covered per-column fraction, clamped to ``[0, cached]``.  The bound
is the soundness contract — a semantic answer never exceeds the
estimate of the containing rectangle.  The fraction comes from a
materialized row ``sample`` when one is supplied (empirical marginal
coverage — an AVI product over *observed* column distributions, robust
to skew) and falls back to interval-width ratios (uniformity) without
one.
Entries are generation-namespaced exactly like the exact-hit cache, so
a lifecycle hot-swap (``bump_generation``) invalidates semantic answers
and exact answers in the same O(1) step.
"""

from __future__ import annotations

import numpy as np

from ..core.query import Predicate, Query
from ..serve.cache import EstimateCache, query_signature

#: default bound on how many cached entries one miss may scan
DEFAULT_SCAN_LIMIT = 128


def subsumes(superset: Query, subset: Query) -> bool:
    """True when every row matching ``subset`` must match ``superset``.

    Sound under the conjunctive-rectangle model: checked per column via
    :meth:`Predicate.contains`.  Columns the superset leaves free are
    unconstrained (vacuously containing); a column the superset
    constrains but the subset leaves free defeats containment.
    """
    for sup_pred in superset.predicates:
        sub_pred = subset.predicate_on(sup_pred.column)
        if sub_pred is None or not sup_pred.contains(sub_pred):
            return False
    return True


def _signature_subsumes(signature: tuple, subset: Query) -> bool:
    """:func:`subsumes` on a cache key's primitive ``(column, lo, hi)``
    form, without materializing Predicate objects per scanned entry."""
    for column, lo, hi in signature:
        sub = subset.predicate_on(column)
        if sub is None:
            return False
        if lo is not None and (sub.lo is None or sub.lo < lo):
            return False
        if hi is not None and (sub.hi is None or sub.hi > hi):
            return False
    return True


def _coverage_fraction(sup: Predicate, sub: Predicate) -> float:
    """Fraction of ``sup``'s interval covered by ``sub`` (in [0, 1]).

    Unbounded sides make the ratio undefined; those columns contribute
    no shrink (fraction 1.0) — the bound stays sound, only looser.
    """
    if sup.lo is None or sup.hi is None or sub.lo is None or sub.hi is None:
        return 1.0
    span = sup.hi - sup.lo
    if span <= 0.0:
        return 1.0
    width = max(0.0, sub.hi - sub.lo)
    return min(1.0, width / span)


def _sample_mask(sample: np.ndarray, pred: Predicate) -> np.ndarray:
    """Boolean mask of sample rows whose column satisfies ``pred``."""
    column = sample[:, pred.column]
    mask = np.ones(len(column), dtype=bool)
    if pred.lo is not None:
        mask &= column >= pred.lo
    if pred.hi is not None:
        mask &= column <= pred.hi
    return mask


def _empirical_fraction(
    sample: np.ndarray, sup: Predicate | None, sub: Predicate
) -> float:
    """Observed fraction of ``sup``-matching sample rows kept by ``sub``.

    ``sup`` of None means the superset leaves the column free: the
    denominator is the whole sample.  An empty denominator falls back
    to the uniform width ratio (no evidence beats no evidence).
    """
    sub_mask = _sample_mask(sample, sub)
    if sup is None:
        return float(sub_mask.mean()) if len(sub_mask) else 1.0
    sup_mask = _sample_mask(sample, sup)
    denom = int(sup_mask.sum())
    if denom == 0:
        return _coverage_fraction(sup, sub)
    return float((sup_mask & sub_mask).sum() / denom)


def interpolated_bound(
    superset: Query,
    subset: Query,
    cached: float,
    sample: np.ndarray | None = None,
) -> float:
    """Semantic answer for ``subset`` given ``cached`` for ``superset``.

    The cached estimate is scaled by the product of per-column coverage
    fractions and clamped to ``[0, cached]`` so the monotonicity bound
    holds by construction.  With a row ``sample`` the fractions are
    empirical marginal coverages (AVI over observed distributions —
    skew-aware); without one they fall back to interval-width ratios
    (uniformity within the cached rectangle).  Columns only the subset
    constrains contribute their sample selectivity (with a sample) or
    nothing (without — sound either way, just looser).  An empty subset
    predicate matches nothing: the answer is 0.
    """
    if any(p.is_empty for p in subset.predicates):
        return 0.0
    shrink = 1.0
    covered = set()
    for sup_pred in superset.predicates:
        sub_pred = subset.predicate_on(sup_pred.column)
        if sub_pred is None:
            continue
        covered.add(sup_pred.column)
        if sample is not None:
            shrink *= _empirical_fraction(sample, sup_pred, sub_pred)
        else:
            shrink *= _coverage_fraction(sup_pred, sub_pred)
    if sample is not None:
        for sub_pred in subset.predicates:
            if sub_pred.column not in covered:
                shrink *= _empirical_fraction(sample, None, sub_pred)
    return min(max(0.0, cached * shrink), cached)


class SemanticEstimateCache(EstimateCache):
    """LRU estimate cache that also answers subset queries.

    Exact hits behave identically to the base class (canonicalized
    keys, LRU order, generation namespacing).  On an exact miss the
    current generation's entries are scanned newest-first for a cached
    superset; a match serves :func:`interpolated_bound` and counts as a
    ``semantic_hit``.  ``last_hit_kind`` tells the serving layer which
    metric outcome to record; ``last_semantic_match`` exposes the
    matched superset and its cached value so tests can assert the
    monotonicity bound on every served answer.
    """

    def __init__(
        self,
        capacity: int = 1024,
        scan_limit: int = DEFAULT_SCAN_LIMIT,
        interpolate: bool = True,
        sample: np.ndarray | None = None,
    ) -> None:
        super().__init__(capacity)
        if scan_limit < 0:
            raise ValueError(f"scan_limit must be non-negative, got {scan_limit}")
        self.scan_limit = scan_limit
        self.interpolate = interpolate
        #: optional materialized row sample for empirical interpolation
        self.sample = (
            None if sample is None else np.asarray(sample, dtype=np.float32)
        )
        self.semantic_hits = 0
        self.last_hit_kind: str | None = None
        #: ``(superset_query, cached_value)`` behind the last semantic hit
        self.last_semantic_match: tuple[Query, float] | None = None

    def get(self, query: Query) -> float | None:
        # Exact-hit path inlined from the base class: at fast-path
        # speeds the extra super().get frame is a measurable slice of
        # the single-digit-microsecond budget.
        key = (self.generation, query_signature(query))
        entries = self._entries
        exact = entries.get(key)
        if exact is not None:
            entries.move_to_end(key)
            self.hits += 1
            self.last_hit_kind = "hit"
            self.last_semantic_match = None
            return exact
        self.misses += 1
        # The miss is counted; re-classify below if the subsumption
        # scan finds a containing rectangle.
        scanned = 0
        for key in reversed(self._entries):
            generation, signature = key
            if generation != self.generation:
                continue
            if scanned >= self.scan_limit:
                break
            scanned += 1
            if not _signature_subsumes(signature, query):
                continue
            # Predicate objects are rebuilt from the primitive key only
            # on an actual match (keys store ``(column, lo, hi)`` tuples
            # so the exact-hit path hashes in C; see query_signature).
            superset = Query(
                tuple(Predicate(c, lo, hi) for c, lo, hi in signature)
            )
            cached = self._entries[key]
            value = (
                interpolated_bound(superset, query, cached, self.sample)
                if self.interpolate
                else cached
            )
            self.misses -= 1
            self.semantic_hits += 1
            self.last_hit_kind = "semantic_hit"
            self.last_semantic_match = (superset, cached)
            # Memoize under the subset's own key: a dashboard repeats
            # the drill-down it just ran, and the repeat should be an
            # exact hit (~1us) instead of paying this scan again.  The
            # entry is generation-namespaced like any other, so a
            # hot-swap invalidates it with the rest.
            self.put(query, value)
            return value
        self.last_hit_kind = None
        self.last_semantic_match = None
        return None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.semantic_hits + self.misses
        return (self.hits + self.semantic_hits) / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"SemanticEstimateCache(size={len(self)}/{self.capacity}, "
            f"gen={self.generation}, hits={self.hits}, "
            f"semantic={self.semantic_hits}, misses={self.misses})"
        )
