"""Raw-speed inference tier: quantize, distill, and cache.

The paper's production-readiness verdict (Figure 4 and Section 7) is
that learned estimators buy accuracy with inference latency.  This
package is the repo's answer, three independently usable pieces:

* :mod:`.quantize` — post-training int8 quantization of the nn
  estimators' dense weights (per-channel affine, dequantize-on-the-fly
  matmul), opted into via ``quantize="int8"`` on naru/mscn/lw-nn;
* :mod:`.distill` — an lw-xgb-style GBDT student fit on a teacher's
  outputs, served behind a confidence gate with teacher fallback and
  deployed only through the lifecycle :class:`PromotionGate`;
* :mod:`.semantic` — a drop-in :class:`EstimateCache` upgrade that
  answers subset queries by predicate subsumption against cached
  superset rectangles, with monotonicity-bounded answers.

Everything here computes in float32/int8 — `tests/test_lint.py` bans
the double-precision dtype from this package.
"""

from .distill import DistilledStudent, DistillReport, distill_into_service
from .quantize import (
    QuantizedLinear,
    QuantizedResMade,
    QuantizedTensor,
    is_quantized,
    module_size_bytes,
    qmatmul,
    quantize_per_channel,
    quantize_sequential,
)
from .semantic import (
    DEFAULT_SCAN_LIMIT,
    SemanticEstimateCache,
    interpolated_bound,
    subsumes,
)

__all__ = [
    "DEFAULT_SCAN_LIMIT",
    "DistillReport",
    "DistilledStudent",
    "QuantizedLinear",
    "QuantizedResMade",
    "QuantizedTensor",
    "SemanticEstimateCache",
    "distill_into_service",
    "interpolated_bound",
    "is_quantized",
    "module_size_bytes",
    "qmatmul",
    "quantize_per_channel",
    "quantize_sequential",
    "subsumes",
]
