"""Device model: CPU wall-clock vs simulated GPU speedups.

The paper measures Naru/MSCN/LW-NN on both a 16-core Xeon and a Tesla
P100.  No GPU exists in this environment, so "GPU" timing is derived
from real CPU wall-clock divided by the per-method speedup factors the
paper itself reports (Section 4.3):

* Naru: training 5-15x faster on GPU (we use the midpoint 8x);
* LW-NN: up to 20x faster (we use 15x);
* MSCN: roughly the same or slower on GPU for small models (0.8x);
* everything else (trees, histograms, SPNs): no GPU path (1x).

Only *model computation* accelerates; query labelling for the
query-driven methods stays at CPU speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Device:
    """A compute device with per-method model-computation speedups."""

    name: str
    speedups: dict[str, float] = field(default_factory=dict)

    def speedup(self, method: str) -> float:
        return self.speedups.get(method, 1.0)

    def model_seconds(self, method: str, cpu_seconds: float) -> float:
        """Wall-clock the model computation would take on this device."""
        return cpu_seconds / self.speedup(method)


CPU = Device("cpu")
GPU = Device("gpu", {"naru": 8.0, "lw-nn": 15.0, "mscn": 0.8})
