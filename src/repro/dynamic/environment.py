"""The dynamic-environment simulator (paper Section 5.1, Figure 5).

The data is updated at timestamp 0 and ``n`` test queries arrive
uniformly over ``[0, T]``.  The estimator starts updating at 0 and
finishes at ``t_u``; queries arriving before ``t_u`` are answered by the
*stale* model, the rest by the *updated* model.  If the update cannot
finish within ``T``, every query is answered stale (the "x" cells of
Figure 6).

The expensive part — updating the model and evaluating the stale and
updated models on the test workload — happens once per estimator in
:func:`measure_update`; :func:`mix_for_horizon` then derives the dynamic
outcome for any horizon ``T`` and device, which is how the harness
sweeps update frequencies (Figure 6), update epochs (Figure 7) and
CPU-vs-GPU (Figure 8) without retraining.

Query-driven methods additionally pay to refresh their training labels:
the harness generates an update workload and labels it against a sample
of the new table (the paper's procedure), and that time counts toward
``t_u``.  "GPU" runs divide only the model-computation part of ``t_u``
by the paper's measured speedup factors (:mod:`repro.dynamic.device`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..obs.clock import perf_counter
from ..core.metrics import qerrors
from ..core.table import Table
from ..core.workload import Workload, WorkloadGenerator
from .device import CPU, Device


@dataclass(frozen=True)
class UpdateMeasurement:
    """One estimator's update, measured once against one data update."""

    method: str
    label_seconds: float
    model_seconds: float
    stale_qerrors: np.ndarray
    updated_qerrors: np.ndarray

    def effective_update_seconds(self, device: Device = CPU) -> float:
        """Total update time on ``device`` (labelling stays on CPU)."""
        return self.label_seconds + device.model_seconds(self.method, self.model_seconds)

    @property
    def stale_p99(self) -> float:
        return float(np.percentile(self.stale_qerrors, 99.0))

    @property
    def updated_p99(self) -> float:
        return float(np.percentile(self.updated_qerrors, 99.0))


@dataclass(frozen=True)
class DynamicResult:
    """Outcome of one estimator in one dynamic environment ``[0, T]``."""

    method: str
    horizon_seconds: float
    update_seconds: float
    finished: bool
    stale_fraction: float
    dynamic_qerrors: np.ndarray

    @property
    def p99(self) -> float:
        """99th-percentile q-error of the dynamic run (Figure 6's metric)."""
        return float(np.percentile(self.dynamic_qerrors, 99.0))


def label_update_workload(
    estimator: CardinalityEstimator,
    new_table: Table,
    num_queries: int,
    rng: np.random.Generator,
    label_sample_fraction: float = 0.05,
) -> tuple[Workload | None, float]:
    """Produce a training workload for a query-driven update, timed.

    Labels come from a uniform sample of the new table (the approximate
    labelling shortcut of Dutt et al. adopted by the paper), and the
    elapsed seconds count toward the update time.
    """
    if not estimator.requires_workload:
        return None, 0.0
    start = perf_counter()
    generator = WorkloadGenerator(new_table)
    queries = tuple(generator.generate_query(rng) for _ in range(num_queries))
    sample = new_table.sample(label_sample_fraction, rng)
    scale = new_table.num_rows / sample.num_rows
    cards = sample.cardinalities(list(queries)) * scale
    elapsed = perf_counter() - start
    return Workload(queries, cards), elapsed


def measure_update(
    estimator: CardinalityEstimator,
    new_table: Table,
    appended: np.ndarray,
    test_workload: Workload,
    rng: np.random.Generator,
    update_query_count: int = 2000,
) -> UpdateMeasurement:
    """Update one estimator and record stale/updated per-query errors.

    The estimator must already be fit on the *old* table; ``new_table``
    is the post-append relation and ``test_workload`` is labelled
    against it.  The estimator is mutated (it ends up updated).
    """
    queries = list(test_workload.queries)
    actuals = test_workload.cardinalities

    stale_q = qerrors(estimator.estimate_many(queries), actuals)
    update_workload, label_seconds = label_update_workload(
        estimator, new_table, update_query_count, rng
    )
    model_seconds = estimator.update(new_table, appended, update_workload)
    updated_q = qerrors(estimator.estimate_many(queries), actuals)
    return UpdateMeasurement(
        method=estimator.name,
        label_seconds=label_seconds,
        model_seconds=model_seconds,
        stale_qerrors=stale_q,
        updated_qerrors=updated_q,
    )


def mix_for_horizon(
    measurement: UpdateMeasurement,
    horizon_seconds: float,
    device: Device = CPU,
) -> DynamicResult:
    """Dynamic outcome for a horizon ``T``: stale answers before ``t_u``,
    updated answers after; all-stale when the update misses the window."""
    if horizon_seconds <= 0.0:
        raise ValueError("horizon must be positive")
    effective = measurement.effective_update_seconds(device)
    n = len(measurement.stale_qerrors)
    if effective >= horizon_seconds:
        return DynamicResult(
            method=measurement.method,
            horizon_seconds=horizon_seconds,
            update_seconds=effective,
            finished=False,
            stale_fraction=1.0,
            dynamic_qerrors=measurement.stale_qerrors,
        )
    stale_fraction = effective / horizon_seconds
    cutoff = int(round(stale_fraction * n))
    dynamic_q = np.concatenate(
        [measurement.stale_qerrors[:cutoff], measurement.updated_qerrors[cutoff:]]
    )
    return DynamicResult(
        method=measurement.method,
        horizon_seconds=horizon_seconds,
        update_seconds=effective,
        finished=True,
        stale_fraction=stale_fraction,
        dynamic_qerrors=dynamic_q,
    )


def run_dynamic(
    estimator: CardinalityEstimator,
    new_table: Table,
    appended: np.ndarray,
    test_workload: Workload,
    horizon_seconds: float,
    rng: np.random.Generator,
    update_query_count: int = 2000,
    device: Device = CPU,
) -> DynamicResult:
    """Measure and mix in one call (convenience for a single horizon)."""
    measurement = measure_update(
        estimator, new_table, appended, test_workload, rng, update_query_count
    )
    return mix_for_horizon(measurement, horizon_seconds, device)
