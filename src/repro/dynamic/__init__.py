"""Dynamic-environment simulator and device model (paper Section 5)."""

from .device import CPU, GPU, Device
from .environment import (
    DynamicResult,
    UpdateMeasurement,
    label_update_workload,
    measure_update,
    mix_for_horizon,
    run_dynamic,
)

__all__ = [
    "CPU",
    "GPU",
    "Device",
    "DynamicResult",
    "UpdateMeasurement",
    "label_update_workload",
    "measure_update",
    "mix_for_horizon",
    "run_dynamic",
]
