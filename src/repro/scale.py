"""Experiment scale presets.

The paper trains on 100K queries, tests on 10K and uses datasets up to
11.6M rows on a 16-core Xeon + P100 GPU.  This reproduction runs numpy
on one CPU, so every experiment is parameterised by a :class:`Scale`:

* ``Scale.ci()`` — seconds per experiment; used by the test suite.
* ``Scale.default()`` — minutes overall; used by ``benchmarks/``.
* ``Scale.paper()`` — closest to the paper's counts; hours (documented
  in EXPERIMENTS.md, not run in CI).

Set the ``REPRO_SCALE`` environment variable to ``ci``/``default``/
``paper`` to override the benchmark harness's choice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity to the paper's counts for wall-clock."""

    name: str
    #: multiplier on the default simulated dataset row counts
    row_fraction: float
    #: labelled queries for training query-driven methods (paper: 100K)
    train_queries: int
    #: labelled queries for evaluation (paper: 10K)
    test_queries: int
    #: epochs for MSCN / LW-NN
    nn_epochs: int
    #: epochs for Naru
    naru_epochs: int
    #: queries generated for a dynamic-environment model update
    update_queries: int
    #: rows of each Section 6 synthetic dataset (paper: 1M)
    synthetic_rows: int
    #: Naru progressive-sampling width (paper: 2000)
    naru_samples: int

    @classmethod
    def ci(cls) -> "Scale":
        return cls(
            name="ci",
            row_fraction=0.25,
            train_queries=400,
            test_queries=150,
            nn_epochs=8,
            naru_epochs=4,
            update_queries=300,
            synthetic_rows=6000,
            naru_samples=100,
        )

    @classmethod
    def default(cls) -> "Scale":
        return cls(
            name="default",
            row_fraction=1.0,
            train_queries=2000,
            test_queries=600,
            nn_epochs=30,
            naru_epochs=10,
            update_queries=1200,
            synthetic_rows=25_000,
            naru_samples=200,
        )

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            name="paper",
            row_fraction=4.0,
            train_queries=20_000,
            test_queries=4000,
            nn_epochs=150,
            naru_epochs=30,
            update_queries=6000,
            synthetic_rows=200_000,
            naru_samples=1000,
        )

    @classmethod
    def from_name(cls, name: str) -> "Scale":
        presets = {"ci": cls.ci, "default": cls.default, "paper": cls.paper}
        try:
            return presets[name]()
        except KeyError:
            raise KeyError(
                f"unknown scale {name!r}; choose from {sorted(presets)}"
            ) from None

    @classmethod
    def from_environment(cls, fallback: str = "default") -> "Scale":
        """Scale named by ``$REPRO_SCALE``, or the fallback preset."""
        return cls.from_name(os.environ.get("REPRO_SCALE", fallback))
