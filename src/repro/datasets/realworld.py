"""Schema-faithful simulators of the paper's four real-world datasets.

The benchmark uses Census, Forest, Power and DMV (paper Table 3).  This
environment is offline, so each dataset is *simulated*: a generator that
matches the published shape — column count, categorical/numerical mix,
heterogeneous per-column domain sizes, skewed categorical marginals, and
cross-column correlation induced through shared latent factors — at a
row count scaled for numpy-on-one-CPU training.  DESIGN.md documents why
the substitution preserves the evaluation's conclusions.

Correlation recipe: every column is a monotone transform of a mixture
``alpha * (latent factors @ w) + (1 - alpha) * z_own`` of several shared
latent Gaussian factors (with a random per-column mixing direction) and
per-column noise.  Columns are dependent (violating AVI, which is what
separates learned from traditional estimators) but the dependence is
higher-order — no single pairwise tree decomposes it exactly — without
any column being a copy of another.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.table import Table

#: Default simulated row counts, preserving the paper's size ordering
#: (Census 49K < Forest 581K < Power 2.1M < DMV 11.6M).
DEFAULT_ROWS = {"census": 12_000, "forest": 25_000, "power": 40_000, "dmv": 60_000}


@dataclass(frozen=True)
class ColumnSpec:
    """Recipe for one simulated column."""

    name: str
    is_categorical: bool
    num_distinct: int
    #: Zipf-like skew of the marginal; 0 = uniform, higher = more skewed.
    skew: float
    #: Weight of the shared latent factor (cross-column correlation).
    latent_weight: float


def _zipf_weights(k: int, skew: float) -> np.ndarray:
    """Normalised Zipf(s=skew) weights over ``k`` categories."""
    ranks = np.arange(1, k + 1, dtype=np.float64)
    w = ranks ** (-skew) if skew > 0 else np.ones(k)
    return w / w.sum()


def _column_values(
    spec: ColumnSpec, factors: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Materialise one column from the shared latent factors."""
    num_rows = factors.shape[0]
    own = rng.normal(size=num_rows)
    # Every column loads on the primary factor (keeping pairwise
    # correlation strong, which is what breaks AVI baselines) plus a
    # column-specific mix of the secondary factors, so the joint
    # dependence is higher-order and no pairwise tree decomposes it.
    direction = np.concatenate([[1.0], rng.uniform(-0.8, 0.8, factors.shape[1] - 1)])
    direction /= np.linalg.norm(direction)
    shared = factors @ direction
    latent = spec.latent_weight * shared + (1.0 - spec.latent_weight) * own
    # Rank-transform the latent to a uniform, then inverse-CDF into the
    # target marginal.  Using ranks keeps the dependence structure while
    # letting us dial in an arbitrary skewed marginal.
    order = np.argsort(latent, kind="stable")
    uniform = np.empty(len(latent))
    uniform[order] = (np.arange(len(latent)) + 0.5) / len(latent)
    weights = _zipf_weights(spec.num_distinct, spec.skew)
    cdf = np.cumsum(weights)
    codes = np.searchsorted(cdf, uniform, side="left").clip(0, spec.num_distinct - 1)
    if spec.is_categorical:
        return codes.astype(np.float64)
    # Numerical columns: map codes linearly onto a measurement-like scale,
    # keeping the intended number of distinct values (Table 3's "Domain"
    # column is a product of per-column distinct counts).
    return np.round(codes * (10_000.0 / spec.num_distinct), 2)


def _build(name: str, specs: list[ColumnSpec], num_rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(num_rows, 3))
    data = np.column_stack([_column_values(s, factors, rng) for s in specs])
    return Table(
        name,
        data,
        [s.name for s in specs],
        [s.is_categorical for s in specs],
    )


# ----------------------------------------------------------------------
# The four datasets
# ----------------------------------------------------------------------
def census(num_rows: int | None = None, seed: int = 1994) -> Table:
    """Census ("Adult") simulator: 13 columns, 8 categorical, small domains."""
    num_rows = num_rows or DEFAULT_ROWS["census"]
    specs = [
        ColumnSpec("age", False, 74, 0.4, 0.5),
        ColumnSpec("workclass", True, 9, 1.3, 0.3),
        ColumnSpec("education", True, 16, 0.8, 0.7),
        ColumnSpec("education_num", False, 16, 0.8, 0.7),
        ColumnSpec("marital_status", True, 7, 0.9, 0.6),
        ColumnSpec("occupation", True, 15, 0.5, 0.5),
        ColumnSpec("relationship", True, 6, 0.7, 0.6),
        ColumnSpec("race", True, 5, 1.8, 0.2),
        ColumnSpec("sex", True, 2, 0.4, 0.3),
        ColumnSpec("capital_gain", False, 120, 2.5, 0.4),
        ColumnSpec("capital_loss", False, 99, 2.5, 0.4),
        ColumnSpec("hours_per_week", False, 96, 1.0, 0.5),
        ColumnSpec("native_country", True, 42, 2.2, 0.1),
    ]
    return _build("census", specs, num_rows, seed)


def forest(num_rows: int | None = None, seed: int = 54) -> Table:
    """Forest cover-type simulator: 10 numerical columns, wide domains."""
    num_rows = num_rows or DEFAULT_ROWS["forest"]
    specs = [
        ColumnSpec("elevation", False, 1978, 0.2, 0.8),
        ColumnSpec("aspect", False, 361, 0.1, 0.2),
        ColumnSpec("slope", False, 67, 0.5, 0.5),
        ColumnSpec("horiz_hydro", False, 551, 0.8, 0.6),
        ColumnSpec("vert_hydro", False, 700, 0.9, 0.6),
        ColumnSpec("horiz_road", False, 5785, 0.4, 0.5),
        ColumnSpec("hillshade_9am", False, 207, 0.3, 0.4),
        ColumnSpec("hillshade_noon", False, 185, 0.3, 0.4),
        ColumnSpec("hillshade_3pm", False, 255, 0.3, 0.4),
        ColumnSpec("horiz_fire", False, 5827, 0.4, 0.7),
    ]
    return _build("forest", specs, num_rows, seed)


def power(num_rows: int | None = None, seed: int = 2006) -> Table:
    """Household power-consumption simulator: 7 correlated measurements."""
    num_rows = num_rows or DEFAULT_ROWS["power"]
    specs = [
        ColumnSpec("global_active_power", False, 4187, 0.9, 0.9),
        ColumnSpec("global_reactive_power", False, 533, 0.8, 0.5),
        ColumnSpec("voltage", False, 2837, 0.1, 0.4),
        ColumnSpec("global_intensity", False, 222, 0.9, 0.9),
        ColumnSpec("sub_metering_1", False, 89, 2.0, 0.6),
        ColumnSpec("sub_metering_2", False, 82, 2.0, 0.5),
        ColumnSpec("sub_metering_3", False, 32, 1.2, 0.7),
    ]
    return _build("power", specs, num_rows, seed)


def dmv(num_rows: int | None = None, seed: int = 11) -> Table:
    """DMV registration simulator: 11 columns, 10 categorical, heavy skew."""
    num_rows = num_rows or DEFAULT_ROWS["dmv"]
    specs = [
        ColumnSpec("record_type", True, 4, 2.0, 0.2),
        ColumnSpec("registration_class", True, 75, 1.8, 0.7),
        ColumnSpec("state", True, 89, 2.8, 0.2),
        ColumnSpec("county", True, 63, 1.0, 0.3),
        ColumnSpec("body_type", True, 34, 1.6, 0.8),
        ColumnSpec("fuel_type", True, 9, 2.4, 0.6),
        ColumnSpec("model_year", False, 90, 0.9, 0.5),
        ColumnSpec("unladen_weight", True, 60, 1.4, 0.8),
        ColumnSpec("max_gross_weight", True, 50, 1.7, 0.8),
        ColumnSpec("passengers", True, 12, 2.5, 0.4),
        ColumnSpec("scofflaw", True, 2, 1.5, 0.1),
    ]
    return _build("dmv", specs, num_rows, seed)


_FACTORIES = {"census": census, "forest": forest, "power": power, "dmv": dmv}


def load(name: str, num_rows: int | None = None) -> Table:
    """Load a simulated benchmark dataset by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(num_rows)


def dataset_names() -> list[str]:
    """Benchmark dataset names in the paper's order."""
    return ["census", "forest", "power", "dmv"]
