"""Benchmark datasets: simulated real-world tables and the Section 6
synthetic generator."""

from .realworld import census, dataset_names, dmv, forest, load, power
from .synthetic import (
    correlation_sweep,
    domain_sweep,
    generate_synthetic,
    skew_sweep,
    skewed_uniform,
)
from .updates import apply_update, correlated_append_rows

__all__ = [
    "apply_update",
    "census",
    "correlated_append_rows",
    "correlation_sweep",
    "dataset_names",
    "dmv",
    "domain_sweep",
    "forest",
    "generate_synthetic",
    "load",
    "power",
    "skew_sweep",
    "skewed_uniform",
]
