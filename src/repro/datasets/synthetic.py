"""Synthetic micro-benchmark datasets (paper Section 6.1).

Two-column tables controlled by three factors:

* ``skew`` ``s`` — distribution of the first column.  The paper draws from
  ``genpareto`` with ``s = 0`` uniform and larger ``s`` more skewed, and
  calls ``s = 1`` "exponential distribution".  We use a truncated
  exponential family with rate ``10**s - 1``: exactly uniform at
  ``s = 0``, an exponential shape at ``s = 1``, and increasingly skewed
  beyond — the same qualitative family (see DESIGN.md substitutions).
* ``correlation`` ``c`` — the second column copies the first with
  probability ``c`` and is an independent uniform domain draw otherwise;
  ``c = 0`` independent, ``c = 1`` functionally dependent.
* ``domain_size`` ``d`` — both columns are binned to ``d`` distinct
  integer codes.
"""

from __future__ import annotations

import numpy as np

from ..core.table import Table


def skewed_uniform(
    count: int, skew: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` values in [0, 1) with tunable skew toward 0.

    ``skew = 0`` is exactly uniform; the density at 0 grows with ``skew``
    (truncated-exponential inverse CDF).
    """
    if skew < 0.0:
        raise ValueError("skew must be non-negative")
    u = rng.random(count)
    if skew == 0.0:
        return u
    rate = 10.0**skew - 1.0
    return -np.log1p(-u * (1.0 - np.exp(-rate))) / rate


def generate_synthetic(
    num_rows: int,
    skew: float,
    correlation: float,
    domain_size: int,
    rng: np.random.Generator,
    name: str | None = None,
) -> Table:
    """The two-column dataset of Section 6.1."""
    if num_rows < 1:
        raise ValueError("num_rows must be positive")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    if domain_size < 2:
        raise ValueError("domain_size must be at least 2")

    raw = skewed_uniform(num_rows, skew, rng)
    col1 = np.minimum((raw * domain_size).astype(np.int64), domain_size - 1)

    copy_mask = rng.random(num_rows) < correlation
    random_draws = rng.integers(0, domain_size, size=num_rows)
    col2 = np.where(copy_mask, col1, random_draws)

    data = np.column_stack([col1, col2]).astype(np.float64)
    label = name or f"synthetic_s{skew:g}_c{correlation:g}_d{domain_size}"
    return Table(label, data, ["col0", "col1"], [False, False])


def correlation_sweep(
    num_rows: int,
    rng: np.random.Generator,
    skew: float = 1.0,
    domain_size: int = 1000,
    levels: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> dict[float, Table]:
    """Datasets of Figure 9a: vary correlation, fix skew and domain."""
    return {
        c: generate_synthetic(num_rows, skew, c, domain_size, rng)
        for c in levels
    }


def skew_sweep(
    num_rows: int,
    rng: np.random.Generator,
    correlation: float = 1.0,
    domain_size: int = 1000,
    levels: tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0),
) -> dict[float, Table]:
    """Datasets of Figure 9b: vary skew, fix correlation and domain."""
    return {
        s: generate_synthetic(num_rows, s, correlation, domain_size, rng)
        for s in levels
    }


def domain_sweep(
    num_rows: int,
    rng: np.random.Generator,
    skew: float = 1.0,
    correlation: float = 1.0,
    levels: tuple[int, ...] = (10, 100, 1000, 10000),
) -> dict[int, Table]:
    """Datasets of Figure 10: vary domain size, fix skew and correlation."""
    return {
        d: generate_synthetic(num_rows, skew, correlation, d, rng)
        for d in levels
    }
