"""Data-update procedure for the dynamic environment (paper Section 5.1).

The paper appends 20% new data whose correlation characteristics differ
from the original: it copies the dataset, sorts each column individually
in ascending order (which maximises the Spearman rank correlation between
every pair of columns), randomly picks 20% of the tuples of this sorted
copy, and appends them.  A stale model therefore *must* be updated to
stay accurate.
"""

from __future__ import annotations

import numpy as np

from ..core.table import Table


def correlated_append_rows(
    table: Table, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Rows to append: a random slice of the column-wise-sorted copy."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    sorted_copy = np.sort(table.data, axis=0)
    count = max(1, int(round(table.num_rows * fraction)))
    idx = rng.choice(table.num_rows, size=count, replace=False)
    return sorted_copy[idx]


def apply_update(
    table: Table, rng: np.random.Generator, fraction: float = 0.2
) -> tuple[Table, np.ndarray]:
    """Return ``(updated_table, appended_rows)`` per the paper's recipe."""
    appended = correlated_append_rows(table, fraction, rng)
    return table.append_rows(appended, name=f"{table.name}_updated"), appended
