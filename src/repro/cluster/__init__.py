"""Clustering / dependence substrate used by DeepDB's SPN learner."""

from .kmeans import kmeans
from .rdc import rdc, rdc_matrix

__all__ = ["kmeans", "rdc", "rdc_matrix"]
