"""KMeans clustering (Lloyd's algorithm with k-means++ seeding).

DeepDB splits a table into row clusters to create SPN sum nodes; the
original implementation uses scikit-learn's KMeans, which is unavailable
here, so this module provides a compatible replacement.
"""

from __future__ import annotations

import numpy as np


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[rng.integers(n)]
    dist2 = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = dist2.sum()
        if total <= 0.0:
            centers[i:] = points[rng.integers(n, size=k - i)]
            break
        probs = dist2 / total
        centers[i] = points[rng.choice(n, p=probs)]
        dist2 = np.minimum(dist2, np.sum((points - centers[i]) ** 2, axis=1))
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``k`` groups.

    Returns ``(labels, centers)``.  Columns are standardised internally so
    no single wide-domain attribute dominates the distance metric.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    n = points.shape[0]
    if k < 1:
        raise ValueError("k must be positive")
    if k >= n:
        return np.arange(n, dtype=np.int64) % k, points[:k].copy()

    std = points.std(axis=0)
    std[std == 0.0] = 1.0
    scaled = (points - points.mean(axis=0)) / std

    centers = _kmeanspp_init(scaled, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        # Assign: squared Euclidean distance to each center.
        d2 = (
            np.sum(scaled**2, axis=1)[:, None]
            - 2.0 * scaled @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        new_labels = np.argmin(d2, axis=1)
        shift = 0.0
        for c in range(k):
            members = scaled[new_labels == c]
            if len(members) == 0:
                # Re-seed an empty cluster at the farthest point.
                far = int(np.argmax(np.min(d2, axis=1)))
                members = scaled[far : far + 1]
                new_labels[far] = c
            new_center = members.mean(axis=0)
            shift += float(np.sum((new_center - centers[c]) ** 2))
            centers[c] = new_center
        labels = new_labels
        if shift < tol:
            break
    return labels, centers
