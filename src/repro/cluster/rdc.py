"""Randomized Dependence Coefficient (RDC) [Lopez-Paz et al. 2013].

DeepDB uses pairwise RDC to decide which column groups are (nearly)
independent and can be split under a product node.  RDC is the largest
canonical correlation between random nonlinear projections of the copula
transforms of the two variables; it detects nonlinear dependence that
plain correlation misses.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg


def _copula_transform(values: np.ndarray) -> np.ndarray:
    """Empirical CDF transform (ranks scaled to (0, 1])."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    return ranks / len(values)


def _random_features(
    u: np.ndarray, k: int, scale: float, rng: np.random.Generator
) -> np.ndarray:
    """Sine features of random affine projections of the copula values."""
    aug = np.column_stack([u, np.ones_like(u)])
    w = rng.normal(scale=scale, size=(2, k))
    return np.sin(aug @ w)


def _max_canonical_correlation(
    fx: np.ndarray, fy: np.ndarray, regularization: float = 1e-6
) -> float:
    """Largest canonical correlation between two feature blocks."""
    n = fx.shape[0]
    fx = fx - fx.mean(axis=0)
    fy = fy - fy.mean(axis=0)
    cxx = fx.T @ fx / n + regularization * np.eye(fx.shape[1])
    cyy = fy.T @ fy / n + regularization * np.eye(fy.shape[1])
    cxy = fx.T @ fy / n
    # Solve the generalized eigenproblem for rho^2 via whitening.
    lx = linalg.cholesky(cxx, lower=True)
    ly = linalg.cholesky(cyy, lower=True)
    m = linalg.solve_triangular(lx, cxy, lower=True)
    m = linalg.solve_triangular(ly, m.T, lower=True).T
    sv = linalg.svdvals(m)
    return float(np.clip(sv[0], 0.0, 1.0)) if len(sv) else 0.0


def rdc(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    num_features: int = 20,
    scale: float = 1.0 / 6.0,
) -> float:
    """RDC dependence score between two 1-D variables, in [0, 1]."""
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) < 3 or np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    fx = _random_features(_copula_transform(x), num_features, scale, rng)
    fy = _random_features(_copula_transform(y), num_features, scale, rng)
    return _max_canonical_correlation(fx, fy)


def rdc_matrix(
    data: np.ndarray,
    rng: np.random.Generator,
    num_features: int = 20,
    max_rows: int = 2000,
) -> np.ndarray:
    """Pairwise RDC matrix over the columns of ``data`` (subsampled)."""
    data = np.asarray(data, dtype=np.float64)
    if data.shape[0] > max_rows:
        idx = rng.choice(data.shape[0], size=max_rows, replace=False)
        data = data[idx]
    n_cols = data.shape[1]
    out = np.eye(n_cols)
    for i in range(n_cols):
        for j in range(i + 1, n_cols):
            score = rdc(data[:, i], data[:, j], rng, num_features)
            out[i, j] = out[j, i] = score
    return out
