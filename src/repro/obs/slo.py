"""Per-tenant SLOs with multi-window error-budget burn-rate evaluation.

The paper's central finding is that learned estimators degrade in ways
that only continuous monitoring catches (drift, tail q-errors, slow
updates); ByteCard's production argument is the same — a CE system must
watch its own accuracy and latency to know when to fall back or
retrain.  This module turns the raw telemetry streams into *judgements*:

* an **objective** says what fraction of samples (``target``, e.g. 0.99)
  must be *good* — latency under a per-request budget, or q-error under
  an accuracy ceiling (fed by the ``record_actual()`` feedback path once
  true cardinalities arrive);
* each sample is classified good/bad against the threshold and pushed
  into **two sliding windows** (fast + slow).  The *burn rate* of a
  window is ``bad_fraction / (1 - target)`` — the rate at which the
  error budget is being spent (1.0 = exactly on budget);
* **breach** requires *both* windows to burn at ``breach_burn_rate`` or
  faster (the Google SRE multi-window rule: the slow window keeps a
  momentary blip from paging, the fast window keeps detection prompt);
  **recovery** requires the fast window back at or under
  ``recover_burn_rate``.

Transitions emit ``slo.breach`` / ``slo.recovered`` events and maintain
``repro_slo_breached`` / ``repro_slo_burn_rate`` gauges plus a
transition counter, so the lifecycle :class:`DriftDetector` (and any
dashboard) can consume SLO state as a retrain trigger without touching
the sample stream.

The registry is a fast no-op until an objective is set: routers call
``record_latency`` unconditionally, and tenants without objectives cost
one dict probe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .events import EventLog, get_events
from .metrics import (
    SLO_BREACHED,
    SLO_BURN_RATE,
    SLO_TRANSITIONS,
    MetricsRegistry,
    get_registry,
)

#: objective kinds and the unit their thresholds are expressed in
LATENCY = "latency"  # threshold in milliseconds per request
QERROR = "qerror"  # threshold as a q-error ratio (>= 1.0)

#: update the burn-rate gauges every Nth sample even without a
#: transition, so dashboards track between state changes without paying
#: label-key formatting on every record
_GAUGE_EVERY = 32


@dataclass(frozen=True)
class SloObjective:
    """Declarative objective: ``target`` fraction of samples must be good.

    ``threshold`` is the per-sample good/bad cut — milliseconds for
    :data:`LATENCY`, a ratio for :data:`QERROR`.  Window sizes are in
    samples, not seconds: the serving tier is replay-driven and
    sample-indexed windows keep evaluation deterministic under test
    clocks.
    """

    objective: str
    threshold: float
    target: float = 0.99
    fast_window: int = 64
    slow_window: int = 512
    breach_burn_rate: float = 2.0
    recover_burn_rate: float = 1.0
    #: samples required in a window before it can vote for a breach
    min_samples: int = 32

    def __post_init__(self) -> None:
        if self.objective not in (LATENCY, QERROR):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ValueError("need 1 <= fast_window <= slow_window")
        if self.breach_burn_rate < self.recover_burn_rate:
            raise ValueError("breach_burn_rate must be >= recover_burn_rate")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


class _Window:
    """Sliding good/bad window with O(1) burn-rate reads."""

    __slots__ = ("_flags", "_bad")

    def __init__(self, size: int) -> None:
        self._flags: deque[bool] = deque(maxlen=size)
        self._bad = 0

    def push(self, bad: bool) -> None:
        if len(self._flags) == self._flags.maxlen and self._flags[0]:
            self._bad -= 1
        self._flags.append(bad)
        if bad:
            self._bad += 1

    def __len__(self) -> int:
        return len(self._flags)

    def bad_fraction(self) -> float:
        if not self._flags:
            return 0.0
        return self._bad / len(self._flags)


@dataclass(frozen=True)
class SloStatus:
    """Point-in-time view of one (tenant, objective) tracker."""

    tenant: str
    objective: str
    threshold: float
    target: float
    breached: bool
    fast_burn_rate: float
    slow_burn_rate: float
    samples: int
    bad_samples: int
    breaches: int
    recoveries: int

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "objective": self.objective,
            "threshold": self.threshold,
            "target": self.target,
            "breached": self.breached,
            "fast_burn_rate": self.fast_burn_rate,
            "slow_burn_rate": self.slow_burn_rate,
            "samples": self.samples,
            "bad_samples": self.bad_samples,
            "breaches": self.breaches,
            "recoveries": self.recoveries,
        }


class SloTracker:
    """One tenant × one objective: classify samples, detect transitions."""

    def __init__(
        self,
        tenant: str,
        spec: SloObjective,
        registry: MetricsRegistry,
        events: EventLog,
    ) -> None:
        self.tenant = tenant
        self.spec = spec
        self._registry = registry
        self._events = events
        self._fast = _Window(spec.fast_window)
        self._slow = _Window(spec.slow_window)
        self.breached = False
        self.samples = 0
        self.bad_samples = 0
        self.breaches = 0
        self.recoveries = 0

    def _burn(self, window: _Window) -> float:
        return window.bad_fraction() / self.spec.error_budget

    def record(self, value: float) -> bool:
        """Classify one sample; returns True if the SLO state flipped."""
        bad = value > self.spec.threshold
        self.samples += 1
        if bad:
            self.bad_samples += 1
        self._fast.push(bad)
        self._slow.push(bad)

        fast_burn = self._burn(self._fast)
        slow_burn = self._burn(self._slow)
        transitioned = False
        if not self.breached:
            if (
                len(self._fast) >= min(self.spec.min_samples, self.spec.fast_window)
                and len(self._slow) >= self.spec.min_samples
                and fast_burn >= self.spec.breach_burn_rate
                and slow_burn >= self.spec.breach_burn_rate
            ):
                self.breached = True
                self.breaches += 1
                transitioned = True
                self._transition("slo.breach", fast_burn, slow_burn)
        else:
            if fast_burn <= self.spec.recover_burn_rate:
                self.breached = False
                self.recoveries += 1
                transitioned = True
                self._transition("slo.recovered", fast_burn, slow_burn)
        if transitioned or self.samples % _GAUGE_EVERY == 0:
            self._publish_gauges(fast_burn, slow_burn)
        return transitioned

    def _transition(self, kind: str, fast_burn: float, slow_burn: float) -> None:
        self._events.emit(
            kind,
            tenant=self.tenant,
            objective=self.spec.objective,
            threshold=self.spec.threshold,
            fast_burn_rate=round(fast_burn, 4),
            slow_burn_rate=round(slow_burn, 4),
        )
        self._registry.counter(
            SLO_TRANSITIONS, "SLO breach/recovered transitions"
        ).inc(
            tenant=self.tenant,
            objective=self.spec.objective,
            transition="breach" if kind == "slo.breach" else "recovered",
        )

    def _publish_gauges(self, fast_burn: float, slow_burn: float) -> None:
        burn = self._registry.gauge(
            SLO_BURN_RATE, "Error-budget burn rate per window"
        )
        burn.set(fast_burn, tenant=self.tenant, objective=self.spec.objective, window="fast")
        burn.set(slow_burn, tenant=self.tenant, objective=self.spec.objective, window="slow")
        self._registry.gauge(
            SLO_BREACHED, "1 while the SLO is breached, else 0"
        ).set(1.0 if self.breached else 0.0, tenant=self.tenant, objective=self.spec.objective)

    def status(self) -> SloStatus:
        return SloStatus(
            tenant=self.tenant,
            objective=self.spec.objective,
            threshold=self.spec.threshold,
            target=self.spec.target,
            breached=self.breached,
            fast_burn_rate=self._burn(self._fast),
            slow_burn_rate=self._burn(self._slow),
            samples=self.samples,
            bad_samples=self.bad_samples,
            breaches=self.breaches,
            recoveries=self.recoveries,
        )


class SloRegistry:
    """All (tenant, objective) trackers plus default objectives.

    ``set_objective(spec)`` with no tenant sets a *default* applied
    lazily to any tenant whose samples arrive — per-tenant overrides via
    ``set_objective(spec, tenant=...)`` win.  With no objectives set,
    every ``record_*`` call is a cheap no-op, so the serving tier can
    call in unconditionally.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        events: EventLog | None = None,
    ) -> None:
        self._registry = registry
        self._events = events
        self._defaults: dict[str, SloObjective] = {}
        self._overrides: dict[tuple[str, str], SloObjective] = {}
        self._trackers: dict[tuple[str, str], SloTracker] = {}

    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _event_log(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def set_objective(self, spec: SloObjective, tenant: str | None = None) -> None:
        if tenant is None:
            self._defaults[spec.objective] = spec
        else:
            self._overrides[(tenant, spec.objective)] = spec
            # replace any tracker built from a previous spec
            self._trackers.pop((tenant, spec.objective), None)

    def clear_objectives(self) -> None:
        self._defaults.clear()
        self._overrides.clear()
        self._trackers.clear()

    def has_objectives(self) -> bool:
        return bool(self._defaults or self._overrides)

    def _tracker(self, tenant: str, objective: str) -> SloTracker | None:
        key = (tenant, objective)
        tracker = self._trackers.get(key)
        if tracker is not None:
            return tracker
        spec = self._overrides.get(key) or self._defaults.get(objective)
        if spec is None:
            return None
        tracker = SloTracker(tenant, spec, self._metrics(), self._event_log())
        self._trackers[key] = tracker
        return tracker

    def record_latency(self, tenant: str, seconds: float) -> bool:
        """Feed one request latency; returns True on a state transition."""
        if not self._defaults and not self._overrides:
            return False
        tracker = self._tracker(tenant, LATENCY)
        if tracker is None:
            return False
        return tracker.record(seconds * 1000.0)

    def record_qerror(self, tenant: str, qerror: float) -> bool:
        """Feed one q-error sample (from the record_actual feedback path)."""
        if not self._defaults and not self._overrides:
            return False
        tracker = self._tracker(tenant, QERROR)
        if tracker is None:
            return False
        return tracker.record(qerror)

    def any_breached(self, objective: str | None = None) -> bool:
        return any(
            t.breached
            for t in self._trackers.values()
            if objective is None or t.spec.objective == objective
        )

    def breached_tenants(self, objective: str | None = None) -> list[str]:
        return sorted(
            {
                t.tenant
                for t in self._trackers.values()
                if t.breached
                and (objective is None or t.spec.objective == objective)
            }
        )

    def statuses(self) -> list[SloStatus]:
        return [
            t.status()
            for _, t in sorted(self._trackers.items())
        ]

    def reset(self) -> None:
        """Drop every objective and tracker (test isolation)."""
        self.clear_objectives()


_default_slos = SloRegistry()


def get_slos() -> SloRegistry:
    """The process-wide default SLO registry."""
    return _default_slos
