"""Observability layer: metrics registry, tracing spans, event log, and
training telemetry.

The paper's central evidence is cost/accuracy telemetry — training time,
inference latency, update cost (Figure 4, Figures 6-8).  ``repro.obs``
is the measurement substrate those numbers (and every serving decision)
flow through:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (log-spaced
  latency buckets), Prometheus text exposition and JSON snapshots;
* :mod:`repro.obs.tracing` — nested :func:`span` context managers with
  parent links, cross-process trace context, a ring-buffer
  :class:`SpanCollector` and JSONL export;
* :mod:`repro.obs.events` — a structured :class:`EventLog` for discrete
  occurrences (breaker transitions, fallbacks, sanitizations);
* :mod:`repro.obs.monitor` — the opt-in :class:`TrainingMonitor` hook
  the learned estimators' training loops report per-epoch loss /
  gradient-norm / timing through;
* :mod:`repro.obs.transport` — :class:`TelemetrySnapshot` delta capture
  in forked workers, piggybacked on reply pipes and merged by the
  parent (:class:`TelemetryMerger`) with ``{shard, worker_pid}``
  labels;
* :mod:`repro.obs.slo` — per-tenant latency/q-error objectives with
  multi-window error-budget burn-rate breach detection;
* :mod:`repro.obs.exemplars` — top-K worst-q-error / slowest estimate
  exemplars linking queries to their trace ids;
* :mod:`repro.obs.clock` — the designated monotonic clock aliases (the
  lint in ``tests/test_lint.py`` bans raw ``time.monotonic()`` /
  ``time.perf_counter()`` calls everywhere else).

Metrics and events are always on (both are cheap); span collection and
training monitoring are opt-in via :func:`install_collector` /
:func:`install_monitor` so the hot paths stay free when nobody watches.
Tests isolate themselves with :func:`reset_for_tests`.
"""

from .events import Event, EventLog, emit, get_events
from .exemplars import Exemplar, ExemplarStore, get_exemplars
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    BREAKER_TRANSITIONS,
    ESTIMATOR_PHASE_SECONDS,
    FASTPATH_SEMANTIC,
    FASTPATH_STUDENT,
    GUARD_CLAMPED,
    GUARD_OOD,
    GUARD_QUARANTINE,
    LIFECYCLE_CHECKPOINTS,
    LIFECYCLE_MODEL_GENERATION,
    LIFECYCLE_PROMOTIONS,
    LIFECYCLE_RETRAIN_ATTEMPTS,
    LIFECYCLE_TRANSITIONS,
    OBS_DROPPED,
    PARALLEL_TASKS,
    PARALLEL_WORKERS,
    PARALLEL_WORKER_SECONDS,
    SERVE_CACHE,
    SHARD_REQUESTS,
    SHARD_SHED,
    SHARD_SWAPS,
    SHARD_WORKER_RESTARTS,
    SHARD_WORKERS,
    SERVE_REQUESTS,
    SERVE_TIER_ATTEMPTS,
    SERVE_TIER_SECONDS,
    SLO_BREACHED,
    SLO_BURN_RATE,
    SLO_TRANSITIONS,
    TRAIN_EPOCH_SECONDS,
    TRAIN_EPOCHS,
    TRAIN_LOSS,
    WORKER_QUERIES,
    BoundCounter,
    Counter,
    Gauge,
    Histogram,
    LatencyWindow,
    MetricsRegistry,
    Sample,
    format_quantiles_ms,
    get_registry,
    log_spaced_buckets,
    observe_phase,
    parse_exposition,
    percentile_ms,
)
from .monitor import (
    EpochRecord,
    TrainingMonitor,
    get_monitor,
    install_monitor,
    monitored_training,
    uninstall_monitor,
)
from .slo import (
    LATENCY,
    QERROR,
    SloObjective,
    SloRegistry,
    SloStatus,
    get_slos,
)
from .tracing import (
    Span,
    SpanCollector,
    SpanTimer,
    clear_trace_context,
    current_trace_context,
    get_collector,
    install_collector,
    reseed_span_ids,
    set_trace_context,
    span,
    timed_span,
    uninstall_collector,
)
from .transport import (
    TelemetryCapture,
    TelemetryMerger,
    TelemetrySnapshot,
    get_capture,
    install_worker_capture,
    uninstall_capture,
)


def reset_for_tests() -> None:
    """Restore pristine default telemetry: zeroed registry, cleared
    event log, no span collector, no training monitor, no trace
    context, no worker capture, empty SLO registry and exemplar
    store."""
    get_registry().reset()
    get_events().clear()
    uninstall_collector()
    uninstall_monitor()
    clear_trace_context()
    uninstall_capture()
    get_slos().reset()
    get_exemplars().clear()


__all__ = [
    "BREAKER_TRANSITIONS",
    "BoundCounter",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ESTIMATOR_PHASE_SECONDS",
    "FASTPATH_SEMANTIC",
    "FASTPATH_STUDENT",
    "GUARD_CLAMPED",
    "GUARD_OOD",
    "GUARD_QUARANTINE",
    "EpochRecord",
    "Event",
    "EventLog",
    "Exemplar",
    "ExemplarStore",
    "Gauge",
    "Histogram",
    "LATENCY",
    "LIFECYCLE_CHECKPOINTS",
    "LIFECYCLE_MODEL_GENERATION",
    "LIFECYCLE_PROMOTIONS",
    "LIFECYCLE_RETRAIN_ATTEMPTS",
    "LIFECYCLE_TRANSITIONS",
    "LatencyWindow",
    "MetricsRegistry",
    "OBS_DROPPED",
    "PARALLEL_TASKS",
    "PARALLEL_WORKERS",
    "PARALLEL_WORKER_SECONDS",
    "QERROR",
    "SERVE_CACHE",
    "SERVE_REQUESTS",
    "SERVE_TIER_ATTEMPTS",
    "SERVE_TIER_SECONDS",
    "SHARD_REQUESTS",
    "SHARD_SHED",
    "SHARD_SWAPS",
    "SHARD_WORKERS",
    "SHARD_WORKER_RESTARTS",
    "SLO_BREACHED",
    "SLO_BURN_RATE",
    "SLO_TRANSITIONS",
    "Sample",
    "SloObjective",
    "SloRegistry",
    "SloStatus",
    "Span",
    "SpanCollector",
    "SpanTimer",
    "TRAIN_EPOCHS",
    "TRAIN_EPOCH_SECONDS",
    "TRAIN_LOSS",
    "TelemetryCapture",
    "TelemetryMerger",
    "TelemetrySnapshot",
    "TrainingMonitor",
    "WORKER_QUERIES",
    "clear_trace_context",
    "current_trace_context",
    "emit",
    "format_quantiles_ms",
    "get_capture",
    "get_collector",
    "get_events",
    "get_exemplars",
    "get_monitor",
    "get_registry",
    "get_slos",
    "install_collector",
    "install_monitor",
    "install_worker_capture",
    "log_spaced_buckets",
    "monitored_training",
    "observe_phase",
    "parse_exposition",
    "percentile_ms",
    "reseed_span_ids",
    "reset_for_tests",
    "set_trace_context",
    "span",
    "timed_span",
    "uninstall_capture",
    "uninstall_collector",
    "uninstall_monitor",
]
