"""Observability layer: metrics registry, tracing spans, event log, and
training telemetry.

The paper's central evidence is cost/accuracy telemetry — training time,
inference latency, update cost (Figure 4, Figures 6-8).  ``repro.obs``
is the measurement substrate those numbers (and every serving decision)
flow through:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (log-spaced
  latency buckets), Prometheus text exposition and JSON snapshots;
* :mod:`repro.obs.tracing` — nested :func:`span` context managers with
  parent links, a ring-buffer :class:`SpanCollector` and JSONL export;
* :mod:`repro.obs.events` — a structured :class:`EventLog` for discrete
  occurrences (breaker transitions, fallbacks, sanitizations);
* :mod:`repro.obs.monitor` — the opt-in :class:`TrainingMonitor` hook
  the learned estimators' training loops report per-epoch loss /
  gradient-norm / timing through.

Metrics and events are always on (both are cheap); span collection and
training monitoring are opt-in via :func:`install_collector` /
:func:`install_monitor` so the hot paths stay free when nobody watches.
Tests isolate themselves with :func:`reset_for_tests`.
"""

from .events import Event, EventLog, emit, get_events
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    BREAKER_TRANSITIONS,
    ESTIMATOR_PHASE_SECONDS,
    LIFECYCLE_CHECKPOINTS,
    LIFECYCLE_MODEL_GENERATION,
    LIFECYCLE_PROMOTIONS,
    LIFECYCLE_RETRAIN_ATTEMPTS,
    LIFECYCLE_TRANSITIONS,
    PARALLEL_TASKS,
    PARALLEL_WORKERS,
    PARALLEL_WORKER_SECONDS,
    SERVE_CACHE,
    SHARD_REQUESTS,
    SHARD_SHED,
    SHARD_SWAPS,
    SHARD_WORKER_RESTARTS,
    SHARD_WORKERS,
    SERVE_REQUESTS,
    SERVE_TIER_ATTEMPTS,
    SERVE_TIER_SECONDS,
    TRAIN_EPOCH_SECONDS,
    TRAIN_EPOCHS,
    TRAIN_LOSS,
    Counter,
    Gauge,
    Histogram,
    LatencyWindow,
    MetricsRegistry,
    Sample,
    format_quantiles_ms,
    get_registry,
    log_spaced_buckets,
    observe_phase,
    parse_exposition,
    percentile_ms,
)
from .monitor import (
    EpochRecord,
    TrainingMonitor,
    get_monitor,
    install_monitor,
    monitored_training,
    uninstall_monitor,
)
from .tracing import (
    Span,
    SpanCollector,
    SpanTimer,
    get_collector,
    install_collector,
    span,
    timed_span,
    uninstall_collector,
)


def reset_for_tests() -> None:
    """Restore pristine default telemetry: zeroed registry, cleared
    event log, no span collector, no training monitor."""
    get_registry().reset()
    get_events().clear()
    uninstall_collector()
    uninstall_monitor()


__all__ = [
    "BREAKER_TRANSITIONS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ESTIMATOR_PHASE_SECONDS",
    "EpochRecord",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "LIFECYCLE_CHECKPOINTS",
    "LIFECYCLE_MODEL_GENERATION",
    "LIFECYCLE_PROMOTIONS",
    "LIFECYCLE_RETRAIN_ATTEMPTS",
    "LIFECYCLE_TRANSITIONS",
    "LatencyWindow",
    "MetricsRegistry",
    "PARALLEL_TASKS",
    "PARALLEL_WORKERS",
    "PARALLEL_WORKER_SECONDS",
    "SERVE_CACHE",
    "SERVE_REQUESTS",
    "SERVE_TIER_ATTEMPTS",
    "SERVE_TIER_SECONDS",
    "SHARD_REQUESTS",
    "SHARD_SHED",
    "SHARD_SWAPS",
    "SHARD_WORKERS",
    "SHARD_WORKER_RESTARTS",
    "Sample",
    "Span",
    "SpanCollector",
    "SpanTimer",
    "TRAIN_EPOCHS",
    "TRAIN_EPOCH_SECONDS",
    "TRAIN_LOSS",
    "TrainingMonitor",
    "emit",
    "format_quantiles_ms",
    "get_collector",
    "get_events",
    "get_monitor",
    "get_registry",
    "install_collector",
    "install_monitor",
    "log_spaced_buckets",
    "monitored_training",
    "observe_phase",
    "parse_exposition",
    "percentile_ms",
    "reset_for_tests",
    "span",
    "timed_span",
    "uninstall_collector",
    "uninstall_monitor",
]
