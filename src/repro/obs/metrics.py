"""Process-wide metrics: counters, gauges and log-bucketed histograms.

The paper's evidence is cost telemetry — training time, inference
latency, update cost (Figure 4, Figures 6-8) — so the reproduction keeps
a first-class :class:`MetricsRegistry` that every layer reports into.
Three instrument kinds, all label-aware:

* :class:`Counter` — monotonically increasing totals (queries served,
  breaker trips, sanitizations);
* :class:`Gauge` — last-written values (current training loss, breaker
  state);
* :class:`Histogram` — distributions over fixed **log-spaced buckets**
  (latencies span six orders of magnitude across the thirteen
  estimators, so linear buckets are useless).

A registry renders to the Prometheus text exposition format
(:meth:`MetricsRegistry.render_text`, linted by
:func:`parse_exposition`) and to a JSON-safe snapshot
(:meth:`MetricsRegistry.snapshot`).  A module-level default registry
backs the instrumented estimator/serving layers; tests isolate
themselves with :func:`repro.obs.reset_for_tests`.

:class:`LatencyWindow` is the one shared latency-summary code path:
exact percentiles over a sliding sample window, used by both the serving
layer's health snapshots and the benchmark harness.
"""

from __future__ import annotations

import json
import math
import re
import threading
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: label-set key: a sorted tuple of (label, value) pairs
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    escaped = (
        (k, v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for k, v in key
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


class _Metric:
    """Shared name/help plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def _check_labels(self, labels: dict[str, object]) -> LabelKey:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {self.name}")
        return _label_key(labels)

    # Subclasses provide: samples() -> iterable of exposition lines,
    # snapshot() -> JSON-safe dict, reset().


class Counter(_Metric):
    """A monotonically increasing total, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0.0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._check_labels(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def labelled(self, **labels: object) -> "BoundCounter":
        """A handle bound to one label set, for per-query hot paths.

        Label validation and key construction happen once, here; the
        handle's :meth:`BoundCounter.inc` is a dict bump.  The handle
        stays valid across :meth:`reset` (reset clears the series map,
        it does not replace it)."""
        return BoundCounter(self, self._check_labels(labels))

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterable[str]:
        for key in sorted(self._values):
            yield f"{self.name}{_format_labels(key)} {_format_value(self._values[key])}"

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }

    def reset(self) -> None:
        self._values.clear()


class BoundCounter:
    """One counter series with its label key pre-built (see
    :meth:`Counter.labelled`)."""

    __slots__ = ("_values", "_key")

    def __init__(self, counter: Counter, key: LabelKey) -> None:
        self._values = counter._values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError("counter cannot decrease")
        self._values[self._key] = self._values.get(self._key, 0.0) + amount


class Gauge(_Metric):
    """A value that goes up and down, one series per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._check_labels(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._check_labels(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterable[str]:
        for key in sorted(self._values):
            yield f"{self.name}{_format_labels(key)} {_format_value(self._values[key])}"

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }

    def reset(self) -> None:
        self._values.clear()


def log_spaced_buckets(
    lo: float = 1e-6, hi: float = 100.0, per_decade: int = 4
) -> tuple[float, ...]:
    """Bucket upper bounds spaced evenly in log10 from ``lo`` to ``hi``."""
    if lo <= 0.0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be at least 1")
    steps = round(per_decade * math.log10(hi / lo))
    return tuple(lo * 10 ** (i / per_decade) for i in range(steps + 1))


#: Latency buckets: 1 microsecond to 100 seconds, four per decade.  The
#: spread covers sub-ms traditional estimators and minutes-long learned
#: training epochs in the same instrument.
DEFAULT_LATENCY_BUCKETS = log_spaced_buckets(1e-6, 100.0, per_decade=4)


@dataclass
class _HistogramSeries:
    counts: list[int]
    total: float = 0.0
    count: int = 0


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative Prometheus exposition.

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    Fixed buckets make series **mergeable**: a worker process can ship
    its per-bucket counts across a pipe and the parent adds them in via
    :meth:`merge_series` without losing any exposition fidelity.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def _get(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                counts=[0] * (len(self.bounds) + 1)
            )
        return series

    def observe(self, value: float, **labels: object) -> None:
        series = self._get(self._check_labels(labels))
        index = len(self.bounds)  # the +Inf bucket
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        series.counts[index] += 1
        series.total += value
        series.count += 1

    def merge_series(
        self,
        counts: Sequence[int],
        total: float,
        count: int,
        **labels: object,
    ) -> None:
        """Add another histogram's per-bucket counts into one series.

        The telemetry transport's merge path: ``counts`` must come from
        a histogram with identical bounds (one entry per finite bucket
        plus the ``+Inf`` bucket).
        """
        if len(counts) != len(self.bounds) + 1:
            raise ValueError(
                f"cannot merge {len(counts)} buckets into {self.name} "
                f"({len(self.bounds) + 1} buckets)"
            )
        series = self._get(self._check_labels(labels))
        for i, bucket_count in enumerate(counts):
            series.counts[i] += int(bucket_count)
        series.total += float(total)
        series.count += int(count)

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = q * series.count
        cumulative = 0
        for i, bucket_count in enumerate(series.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                fraction = (rank - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return self.bounds[-1]

    def samples(self) -> Iterable[str]:
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            for i, bound in enumerate(self.bounds):
                cumulative += series.counts[i]
                bucket_key = key + (("le", _format_value(bound)),)
                yield f"{self.name}_bucket{_format_labels(bucket_key)} {cumulative}"
            inf_key = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket{_format_labels(inf_key)} {series.count}"
            yield f"{self.name}_sum{_format_labels(key)} {_format_value(series.total)}"
            yield f"{self.name}_count{_format_labels(key)} {series.count}"

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "series": [
                {
                    "labels": dict(key),
                    "counts": list(series.counts),
                    "sum": series.total,
                    "count": series.count,
                }
                for key, series in sorted(self._series.items())
            ],
        }

    def reset(self) -> None:
        self._series.clear()


class MetricsRegistry:
    """Name -> metric, with get-or-create accessors and two exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition of every metric in the registry."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-safe dict: ``{metric_name: {kind, help, series}}``."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def merge_snapshot(
        self, snapshot: dict, extra_labels: dict[str, object] | None = None
    ) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The dual of :meth:`snapshot`, and the metrics half of the
        cross-process telemetry transport: a worker captures its registry
        as a snapshot (then resets, so each capture is a *delta*), ships
        it over the reply pipe, and the parent merges it here.
        ``extra_labels`` (e.g. ``worker_pid``/``shard``) are appended to
        every merged series so worker-originated samples stay
        distinguishable from the parent's own.

        Counters add, gauges last-write-win, histograms merge per-bucket
        (bounds must match — both sides build them from the same code).
        """
        extra = extra_labels or {}
        for name, data in snapshot.items():
            kind = data.get("kind", "untyped")
            if kind == "counter":
                counter = self.counter(name, data.get("help", ""))
                for series in data["series"]:
                    if series["value"] > 0.0:
                        counter.inc(series["value"], **series["labels"], **extra)
            elif kind == "gauge":
                gauge = self.gauge(name, data.get("help", ""))
                for series in data["series"]:
                    gauge.set(series["value"], **series["labels"], **extra)
            elif kind == "histogram":
                histogram = self.histogram(
                    name, data.get("help", ""), buckets=data["buckets"]
                )
                if list(histogram.bounds) != list(data["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ; "
                        "cannot merge"
                    )
                for series in data["series"]:
                    histogram.merge_series(
                        series["counts"],
                        series["sum"],
                        series["count"],
                        **series["labels"],
                        **extra,
                    )
            else:
                raise ValueError(f"cannot merge metric kind {kind!r} ({name})")

    def to_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def reset(self) -> None:
        """Zero every series but keep the registered metric objects."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()


# ----------------------------------------------------------------------
# Exposition lint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Sample:
    """One parsed exposition sample line."""

    name: str
    labels: dict[str, str]
    value: float


#: one quoted label pair; the value admits any escaped character, so
#: ``"``, ``\`` and ``}``/``=`` inside values cannot confuse the parser
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    rf"(?:\{{(?P<labels>(?:{_LABEL_PAIR})(?:,(?:{_LABEL_PAIR}))*,?)?\}})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_ESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label_value(value: str) -> str:
    """Exact inverse of the escaping applied by :func:`_format_labels`."""
    return _ESCAPE_RE.sub(
        lambda m: _UNESCAPES.get(m.group(1), m.group(1)), value
    )


def parse_exposition(text: str) -> list[Sample]:
    """Parse (and thereby lint) Prometheus text exposition.

    Raises :class:`ValueError` on the first malformed line; returns the
    parsed samples otherwise, so tests can cross-check exposition
    contents against in-process counters.  Label values are unescaped
    (``\\\\`` / ``\\"`` / ``\\n``), so a registry → :meth:`render_text`
    → ``parse_exposition`` round-trip reproduces the original label
    values exactly, whatever characters they contain.
    """
    samples: list[Sample] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    raise ValueError(f"line {lineno}: bad TYPE {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
            if not labels:
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value {value_text!r}"
            ) from None
        samples.append(Sample(match.group("name"), labels, value))
    return samples


# ----------------------------------------------------------------------
# Shared latency summaries (the one percentile/formatting code path)
# ----------------------------------------------------------------------
def percentile_ms(samples_seconds: Iterable[float], q: float) -> float:
    """Exact ``q``-th percentile (0-100) of latency samples, in ms."""
    values = sorted(samples_seconds)
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    rank = (q / 100.0) * (len(values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return 1000.0 * values[low]
    fraction = rank - low
    return 1000.0 * (values[low] * (1.0 - fraction) + values[high] * fraction)


def format_quantiles_ms(p50_ms: float, p99_ms: float) -> str:
    """Canonical ``p50=..ms p99=..ms`` rendering used by health text."""
    return f"p50={p50_ms:.2f}ms p99={p99_ms:.2f}ms"


class LatencyWindow:
    """Sliding window of raw latency samples with exact percentiles.

    The serving layer keeps one per tier; the benchmark harness builds
    one over a replay.  Exact quantiles over the window complement the
    registry's bucketed :class:`Histogram` (which is lossy but
    mergeable/exportable).
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)

    def observe(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def extend(self, samples_seconds: Iterable[float]) -> "LatencyWindow":
        for s in samples_seconds:
            self.observe(s)
        return self

    def percentile_ms(self, q: float) -> float:
        return percentile_ms(self._samples, q)

    def summary_text(self) -> str:
        return format_quantiles_ms(self.percentile_ms(50.0), self.percentile_ms(99.0))

    def __len__(self) -> int:
        return len(self._samples)


# ----------------------------------------------------------------------
# Module-level default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the instrumented layers feed."""
    return _default_registry


#: Canonical instrument names used by the instrumented layers.
ESTIMATOR_PHASE_SECONDS = "repro_estimator_phase_seconds"
SERVE_REQUESTS = "repro_serve_requests_total"
SERVE_TIER_ATTEMPTS = "repro_serve_tier_attempts_total"
SERVE_TIER_SECONDS = "repro_serve_tier_seconds"
SERVE_CACHE = "repro_serve_cache_total"
BREAKER_TRANSITIONS = "repro_breaker_transitions_total"
TRAIN_EPOCHS = "repro_training_epochs_total"
TRAIN_LOSS = "repro_training_loss"
TRAIN_EPOCH_SECONDS = "repro_training_epoch_seconds"
LIFECYCLE_TRANSITIONS = "repro_lifecycle_transitions_total"
LIFECYCLE_RETRAIN_ATTEMPTS = "repro_lifecycle_retrain_attempts_total"
LIFECYCLE_CHECKPOINTS = "repro_lifecycle_checkpoints_total"
LIFECYCLE_PROMOTIONS = "repro_lifecycle_promotions_total"
LIFECYCLE_MODEL_GENERATION = "repro_lifecycle_model_generation"
PARALLEL_TASKS = "repro_parallel_tasks_total"
PARALLEL_WORKER_SECONDS = "repro_parallel_worker_seconds_total"
PARALLEL_WORKERS = "repro_parallel_workers"
SHARD_REQUESTS = "repro_shard_requests_total"
SHARD_SHED = "repro_shard_shed_total"
SHARD_WORKER_RESTARTS = "repro_shard_worker_restarts_total"
SHARD_WORKERS = "repro_shard_workers"
SHARD_SWAPS = "repro_shard_swaps_total"
#: queries answered by worker processes, labelled {shard, worker,
#: worker_pid} after the transport merge — the per-worker serve counter
#: whose sum must equal the parent's accepted worker-path query count
WORKER_QUERIES = "repro_worker_queries_total"
#: telemetry items lost to bounded snapshot buffers (drop-oldest) or to
#: duplicate-snapshot dedupe, labelled {kind}
OBS_DROPPED = "repro_obs_dropped_total"
#: error-budget burn rate per {tenant, objective, window}
SLO_BURN_RATE = "repro_slo_burn_rate"
#: 1 while the {tenant, objective} SLO is breached, else 0
SLO_BREACHED = "repro_slo_breached"
#: breach/recovered transitions per {tenant, objective, transition}
SLO_TRANSITIONS = "repro_slo_transitions_total"
#: distilled-student answers, labelled {outcome}: "student" when the
#: confidence gate lets the student answer, "teacher" on fallback
FASTPATH_STUDENT = "repro_fastpath_student_total"
#: router-level shared semantic-cache probes before shard dispatch,
#: labelled {shard, outcome} ("hit" / "semantic_hit" / "miss")
FASTPATH_SEMANTIC = "repro_fastpath_semantic_total"
#: estimates pulled into the provable bound interval, labelled {reason}
#: ("above-upper" / "below-lower")
GUARD_CLAMPED = "repro_guard_clamped_total"
#: out-of-distribution guard decisions, labelled {action} ("reroute")
GUARD_OOD = "repro_guard_ood_total"
#: quarantine transitions, labelled {action} ("demote" / "readmit" /
#: "probe-failed")
GUARD_QUARANTINE = "repro_guard_quarantine_total"


def observe_phase(
    phase: str,
    estimator: str,
    seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one fit/estimate/update latency sample for ``estimator``."""
    reg = registry if registry is not None else _default_registry
    reg.histogram(
        ESTIMATOR_PHASE_SECONDS,
        "Wall-clock seconds of estimator fit/estimate/update calls",
    ).observe(seconds, phase=phase, estimator=estimator)
