"""Exemplar store: the concrete worst cases behind the aggregates.

Percentiles say *how bad*; exemplars say *which query*.  The store keeps
two small top-K reservoirs per tenant — the **slowest** estimates and
the **worst-q-error** estimates — each exemplar linking the query text,
the estimate, the true cardinality (when fed back via
``record_actual()``), the latency, and the ``trace_id`` of the serving
span, so a bad tail sample is one lookup away from its full span tree.

Recording is hot-path-safe: a candidate is compared against the
reservoir's current floor *before* the :class:`Exemplar` (and the query
repr) is built, so the steady state — a sample that doesn't make the
board — costs one float comparison.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Exemplar:
    """One concrete estimate worth looking at."""

    tenant: str
    estimator: str
    query: str
    estimate: float
    latency_seconds: float
    actual: float | None = None
    qerror: float | None = None
    trace_id: int | None = None

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "estimator": self.estimator,
            "query": self.query,
            "estimate": self.estimate,
            "latency_seconds": self.latency_seconds,
            "actual": self.actual,
            "qerror": self.qerror,
            "trace_id": self.trace_id,
        }


class _TopK:
    """Bounded keep-the-largest reservoir (min-heap of (key, seq, item))."""

    __slots__ = ("k", "_heap", "_seq")

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int, Exemplar]] = []
        self._seq = 0  # tie-break so the heap never compares Exemplars

    def floor(self) -> float | None:
        """Smallest key on the board, or None while the board has room."""
        if len(self._heap) < self.k:
            return None
        return self._heap[0][0]

    def offer(self, key: float, item: Exemplar) -> bool:
        self._seq += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (key, self._seq, item))
            return True
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, (key, self._seq, item))
            return True
        return False

    def descending(self) -> list[Exemplar]:
        return [
            item
            for _, _, item in sorted(self._heap, key=lambda t: (-t[0], t[1]))
        ]

    def __len__(self) -> int:
        return len(self._heap)


class ExemplarStore:
    """Per-tenant top-K reservoirs of slowest / worst-q-error estimates."""

    def __init__(self, per_tenant: int = 8) -> None:
        if per_tenant < 1:
            raise ValueError("per_tenant must be at least 1")
        self.per_tenant = per_tenant
        self._slowest: dict[str, _TopK] = {}
        self._worst_qerror: dict[str, _TopK] = {}

    def _board(self, boards: dict[str, _TopK], tenant: str) -> _TopK:
        board = boards.get(tenant)
        if board is None:
            board = boards[tenant] = _TopK(self.per_tenant)
        return board

    def would_record_latency(self, tenant: str, latency_seconds: float) -> bool:
        """Cheap pre-check: would this latency make the board?

        Lets callers skip building the query repr for the steady state.
        """
        board = self._slowest.get(tenant)
        if board is None:
            return True
        floor = board.floor()
        return floor is None or latency_seconds > floor

    def would_record_qerror(self, tenant: str, qerror: float) -> bool:
        board = self._worst_qerror.get(tenant)
        if board is None:
            return True
        floor = board.floor()
        return floor is None or qerror > floor

    def record_latency(self, exemplar: Exemplar) -> bool:
        return self._board(self._slowest, exemplar.tenant).offer(
            exemplar.latency_seconds, exemplar
        )

    def record_qerror(self, exemplar: Exemplar) -> bool:
        if exemplar.qerror is None:
            raise ValueError("q-error exemplar needs a qerror value")
        return self._board(self._worst_qerror, exemplar.tenant).offer(
            exemplar.qerror, exemplar
        )

    def slowest(self, tenant: str | None = None) -> list[Exemplar]:
        """Slowest-first exemplars for one tenant (or all tenants merged)."""
        return self._collect(self._slowest, tenant, key=lambda e: -e.latency_seconds)

    def worst_qerror(self, tenant: str | None = None) -> list[Exemplar]:
        return self._collect(
            self._worst_qerror, tenant, key=lambda e: -(e.qerror or 0.0)
        )

    def _collect(self, boards, tenant, key) -> list[Exemplar]:
        if tenant is not None:
            board = boards.get(tenant)
            return board.descending() if board is not None else []
        merged: list[Exemplar] = []
        for board in boards.values():
            merged.extend(board.descending())
        merged.sort(key=key)
        return merged

    def tenants(self) -> list[str]:
        return sorted(set(self._slowest) | set(self._worst_qerror))

    def to_jsonl(self, path) -> int:
        """One JSON object per exemplar, tagged with its board."""
        written = 0
        with open(path, "w") as fh:
            for board_name, exemplars in (
                ("slowest", self.slowest()),
                ("worst_qerror", self.worst_qerror()),
            ):
                for exemplar in exemplars:
                    record = {"board": board_name, **exemplar.to_dict()}
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
                    written += 1
        return written

    def clear(self) -> None:
        self._slowest.clear()
        self._worst_qerror.clear()

    def __len__(self) -> int:
        return sum(len(b) for b in self._slowest.values()) + sum(
            len(b) for b in self._worst_qerror.values()
        )


_default_store = ExemplarStore()


def get_exemplars() -> ExemplarStore:
    """The process-wide default exemplar store."""
    return _default_store
