"""Nested tracing spans with a ring-buffer collector and JSONL export.

A span is one timed region — an estimator fit, a single serve call, one
tier attempt inside it — with monotonic start/end timestamps, free-form
attributes, and a link to its parent span, so a trace reconstructs *why*
a query took as long as it did (which tiers were tried, which failed,
what the breaker did).

Collection is opt-in: until :func:`install_collector` is called,
:func:`span` yields ``None`` without allocating anything, and
:func:`timed_span` degrades to a bare pair of ``perf_counter`` reads.
That guarded fast path is what lets the estimator hot path stay
instrumented permanently.

**Trace context.**  Every root span starts a trace (``trace_id`` is its
own ``span_id``); children inherit the trace id through the span stack.
For work that crosses a process boundary — a shard dispatching a batch
to a forked worker — the parent ships ``(trace_id, parent_span_id)`` in
the request envelope and the worker installs it with
:func:`set_trace_context`: spans the worker opens at the top of *its*
stack are then parented under the dispatching span, so the merged trace
reads as one tree.  Worker processes call :func:`reseed_span_ids` with a
pid-salted offset so their span ids can never collide with the
parent's (fork copies the id counter).
"""

from __future__ import annotations

import itertools
import json
from collections import Counter as _Counter
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .clock import perf_counter

_span_ids = itertools.count(1)

#: stack of open spans (the reproduction is single-threaded; a span
#: opened on another thread would mis-parent, which we accept)
_stack: list["Span"] = []

_active_collector: "SpanCollector | None" = None

#: (trace_id, parent_span_id) adopted by root spans — the receiving half
#: of cross-process trace propagation; None means "start a fresh trace"
_trace_context: tuple[int, int | None] | None = None


@dataclass
class Span:
    """One timed region; ``end`` is filled when the region exits."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"
    #: id of the trace this span belongs to (the root span's span_id,
    #: possibly propagated from another process)
    trace_id: int | None = None

    @property
    def duration_seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
        }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class SpanCollector:
    """Ring buffer of finished spans (oldest evicted first)."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._spans: deque[Span] = deque(maxlen=capacity)
        #: spans ever added — ``added_total - len(self)`` (since the last
        #: drain) is how many the ring evicted, which the telemetry
        #: transport reports as drops instead of losing silently
        self.added_total = 0

    def add(self, span: Span) -> None:
        self._spans.append(span)
        self.added_total += 1

    def spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def names(self) -> _Counter:
        """Span count by name (for quick trace summaries)."""
        return _Counter(s.name for s in self._spans)

    def children(self, parent: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == parent.span_id]

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def to_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the spans written."""
        spans = list(self._spans)
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)


def install_collector(collector: SpanCollector | None = None) -> SpanCollector:
    """Install (and return) the process-wide collector; spans flow to it."""
    global _active_collector
    _active_collector = collector if collector is not None else SpanCollector()
    return _active_collector


def uninstall_collector() -> None:
    """Disable span collection (restores the zero-overhead fast path)."""
    global _active_collector
    _active_collector = None
    _stack.clear()


def get_collector() -> SpanCollector | None:
    return _active_collector


# ----------------------------------------------------------------------
# Cross-process trace context
# ----------------------------------------------------------------------
def set_trace_context(trace_id: int, parent_span_id: int | None) -> None:
    """Adopt a propagated trace: root spans opened after this call are
    parented under ``parent_span_id`` and tagged with ``trace_id``."""
    global _trace_context
    _trace_context = (trace_id, parent_span_id)


def clear_trace_context() -> None:
    global _trace_context
    _trace_context = None


def current_trace_context() -> tuple[int, int | None] | None:
    return _trace_context


def reseed_span_ids(start: int) -> None:
    """Restart the span-id counter at ``start``.

    Called by forked workers with a pid-salted offset (the fork copied
    the parent's counter, so continuing from it would mint ids that
    collide with the parent's once merged)."""
    global _span_ids
    if start < 1:
        raise ValueError("span ids must be positive")
    _span_ids = itertools.count(start)


@contextmanager
def span(
    name: str, collector: SpanCollector | None = None, **attrs
) -> Iterator[Span | None]:
    """Open a child span of whatever span is currently on the stack.

    Yields the open :class:`Span` (mutate ``attrs``/``status`` freely
    before exit) or ``None`` when collection is off.
    """
    col = collector if collector is not None else _active_collector
    if col is None:
        yield None
        return
    span_id = next(_span_ids)
    if _stack:
        parent_id = _stack[-1].span_id
        trace_id = _stack[-1].trace_id
    elif _trace_context is not None:
        trace_id, parent_id = _trace_context
    else:
        parent_id, trace_id = None, span_id
    record = Span(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        trace_id=trace_id,
        start=perf_counter(),
        attrs=dict(attrs),
    )
    _stack.append(record)
    try:
        yield record
    except BaseException:
        record.status = "error"
        raise
    finally:
        if _stack and _stack[-1] is record:
            _stack.pop()
        if record.end == 0.0:  # timed_span may have closed it already
            record.end = perf_counter()
        col.add(record)


class SpanTimer:
    """Elapsed-seconds handle yielded by :func:`timed_span`."""

    __slots__ = ("elapsed", "span")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.span: Span | None = None


@contextmanager
def timed_span(
    name: str, collector: SpanCollector | None = None, **attrs
) -> Iterator[SpanTimer]:
    """Always measures elapsed time; records a span only when collecting.

    This is the instrumentation primitive behind the estimator protocol:
    the :class:`~repro.core.estimator.TimingRecord` is fed from the
    yielded timer, so the hand-rolled timing and the trace can never
    disagree.
    """
    timer = SpanTimer()
    col = collector if collector is not None else _active_collector
    if col is None:
        start = perf_counter()
        try:
            yield timer
        finally:
            timer.elapsed = perf_counter() - start
        return
    with span(name, collector=col, **attrs) as record:
        timer.span = record
        try:
            yield timer
        finally:
            assert record is not None
            record.end = perf_counter()
            timer.elapsed = record.duration_seconds
