"""Designated monotonic clock helpers — the one approved time source.

Every duration, deadline and timestamp in the codebase must come from a
monotonic clock (wall clock jumps under NTP/DST; ``tests/test_lint.py``
bans ``time.time()`` outright).  This module narrows the discipline one
step further: direct ``time.monotonic()`` / ``time.perf_counter()``
*calls* are also banned outside this file, so every call site either

* takes an **injectable clock** (``clock: Callable[[], float]`` — the
  pattern :class:`~repro.shard.supervisor.WorkerSupervisor` and
  :class:`~repro.serve.service.EstimatorService` follow, which is what
  makes their timeout/deadline logic unit-testable without sleeping), or
* imports the aliases below.

The aliases *are* the stdlib functions (no wrapper-call overhead,
bit-identical timing); the module exists so the lint has a single
designated place where the raw clock may be named.  Holding a
*reference* (``clock=time.monotonic`` as a default argument) is always
allowed — only direct calls are flagged.
"""

from __future__ import annotations

import time

#: CLOCK_MONOTONIC-backed; use for deadlines and timeouts.
monotonic = time.monotonic

#: Highest-resolution monotonic clock; use for durations and spans.
#: On Linux both are CLOCK_MONOTONIC, so ``perf_counter`` readings are
#: comparable *across forked processes* — the property the telemetry
#: transport relies on when it merges worker span timestamps into the
#: parent's trace.
perf_counter = time.perf_counter

__all__ = ["monotonic", "perf_counter"]
