"""Per-epoch training telemetry via an opt-in callback hook.

The learned estimators' training loops (Naru, MSCN, LW-NN, and the GBDT
rounds behind LW-XGB) call :func:`get_monitor` once per loop and, when a
:class:`TrainingMonitor` is installed, report each epoch's loss,
gradient norm and wall-clock.  When nothing is installed the hook
returns ``None`` and the loops skip *all* telemetry work — including the
gradient-norm reduction — so an uninstrumented training run pays nothing
(the paper's Figure 4 cost numbers stay honest).

Install with :func:`install_monitor` (or the :func:`monitored_training`
context manager for scoped use).  The default monitor keeps an in-memory
record list and mirrors every epoch into the metrics registry (loss
gauge, epoch counter, epoch-seconds histogram) and the event log
(``train.epoch`` events), so a dashboard can follow a run live.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .events import EventLog, get_events
from .metrics import (
    TRAIN_EPOCH_SECONDS,
    TRAIN_EPOCHS,
    TRAIN_LOSS,
    MetricsRegistry,
    get_registry,
)


@dataclass(frozen=True)
class EpochRecord:
    """One epoch (or boosting round) of one model's training."""

    model: str
    epoch: int
    loss: float
    grad_norm: float | None
    seconds: float


class TrainingMonitor:
    """Records per-epoch telemetry into memory, metrics and events."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        events: EventLog | None = None,
    ) -> None:
        self._registry = registry
        self._events = events
        self.records: list[EpochRecord] = []

    def on_epoch(
        self,
        model: str,
        epoch: int,
        loss: float,
        grad_norm: float | None = None,
        seconds: float = 0.0,
    ) -> None:
        """Called by a training loop at the end of each epoch/round."""
        record = EpochRecord(model, epoch, float(loss), grad_norm, seconds)
        self.records.append(record)
        registry = self._registry if self._registry is not None else get_registry()
        registry.counter(
            TRAIN_EPOCHS, "Training epochs/boosting rounds completed"
        ).inc(model=model)
        registry.gauge(TRAIN_LOSS, "Most recent training-epoch loss").set(
            record.loss, model=model
        )
        registry.histogram(
            TRAIN_EPOCH_SECONDS, "Wall-clock seconds per training epoch"
        ).observe(seconds, model=model)
        events = self._events if self._events is not None else get_events()
        events.emit(
            "train.epoch",
            model=model,
            epoch=epoch,
            loss=record.loss,
            grad_norm=grad_norm,
            seconds=seconds,
        )

    # ------------------------------------------------------------------
    def records_for(self, model: str) -> list[EpochRecord]:
        return [r for r in self.records if r.model == model]

    def losses(self, model: str) -> list[float]:
        return [r.loss for r in self.records_for(model)]

    def models(self) -> list[str]:
        return sorted({r.model for r in self.records})


_active_monitor: TrainingMonitor | None = None


def install_monitor(monitor: TrainingMonitor | None = None) -> TrainingMonitor:
    """Install (and return) the process-wide training monitor."""
    global _active_monitor
    _active_monitor = monitor if monitor is not None else TrainingMonitor()
    return _active_monitor


def uninstall_monitor() -> None:
    """Remove the monitor (training loops revert to the free fast path)."""
    global _active_monitor
    _active_monitor = None


def get_monitor() -> TrainingMonitor | None:
    """The hook training loops consult; ``None`` means telemetry off."""
    return _active_monitor


@contextmanager
def monitored_training(
    monitor: TrainingMonitor | None = None,
) -> Iterator[TrainingMonitor]:
    """Scoped install: monitor training inside the block, then restore."""
    global _active_monitor
    previous = _active_monitor
    installed = install_monitor(monitor)
    try:
        yield installed
    finally:
        _active_monitor = previous
