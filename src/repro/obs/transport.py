"""Cross-process telemetry transport for the sharded serving tier.

Forked workers record into *their* process-local registry / span
collector / event log; without a transport everything they observe dies
at the pipe boundary.  This module moves that telemetry over the
existing duplex reply pipes — no extra file descriptors, no side
channel, no background thread:

* the worker installs a :class:`TelemetryCapture` at startup
  (:func:`install_worker_capture`), which resets the process-default
  registry/event log, installs a fresh span collector, and reseeds span
  ids to a pid-salted range so worker span ids can never collide with
  the parent's once merged;
* after each request the worker calls :meth:`TelemetryCapture.take`,
  which drains everything recorded since the previous take into a
  compact, picklable :class:`TelemetrySnapshot` **delta** (the registry
  is reset after snapshotting), piggybacked on the reply tuple;
* the parent feeds replies through a :class:`TelemetryMerger`, which
  dedupes on ``(worker_pid, seq)`` (a crashed-mid-reply worker's batch
  is re-dispatched to a sibling, and a retransmitted snapshot must not
  double-count), folds metric deltas into the parent registry with
  ``{shard, worker_pid}`` labels, re-emits events, and re-homes spans
  into the parent's collector.

Because captures are deltas and the worker resets its registry on every
take, a reply that never arrives (crash, timeout, stale late answer)
simply loses that delta — counts are *at-most-once*, never duplicated,
which is what keeps the per-worker serve-counter sum exactly equal to
the parent's accepted-dispatch count even through the chaos matrix.

Snapshots are bounded (``max_spans`` / ``max_events``, drop-oldest);
anything dropped — by the bound, by ring-buffer eviction between takes,
or by the duplicate-dedupe — is counted into
``repro_obs_dropped_total{kind=...}`` rather than vanishing silently.

Trace context rides the other direction: the parent puts
``(trace_id, parent_span_id)`` of its dispatching ``serve.batch`` span
into the request envelope, and the worker adopts it via
:func:`repro.obs.tracing.set_trace_context`, so worker spans re-parent
under the dispatching span and the merged trace reads as one tree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from . import events as _events_mod
from . import tracing as _tracing_mod
from .events import EventLog, get_events
from .metrics import OBS_DROPPED, MetricsRegistry, get_registry
from .tracing import Span, SpanCollector, install_collector, reseed_span_ids

#: default bounds on one snapshot's span/event payload — sized for a
#: per-batch cadence (a serve batch emits a handful of spans per query
#: tier, not thousands)
DEFAULT_MAX_SPANS = 512
DEFAULT_MAX_EVENTS = 512


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One worker's telemetry delta, shipped inside a pipe reply.

    Everything is plain picklable data: ``metrics`` is a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict, ``spans``
    and ``events`` are tuples of ``to_dict()`` payloads.  ``seq`` is a
    per-capture monotonic sequence number — the merge dedupes on
    ``(worker_pid, seq)``.
    """

    worker_pid: int
    worker: str
    shard: str
    seq: int
    metrics: dict = field(default_factory=dict)
    spans: tuple = ()
    events: tuple = ()
    #: items lost before this snapshot was built (ring eviction between
    #: takes + drop-oldest truncation to the snapshot bounds)
    dropped_spans: int = 0
    dropped_events: int = 0

    def is_empty(self) -> bool:
        return (
            not self.metrics
            and not self.spans
            and not self.events
            and self.dropped_spans == 0
            and self.dropped_events == 0
        )


class TelemetryCapture:
    """Worker-side delta capture over the process telemetry singletons.

    Each :meth:`take` drains the registry (snapshot + reset), the span
    collector, and the event log into a :class:`TelemetrySnapshot`.
    Takes are cheap when nothing happened (empty dicts/tuples).
    """

    def __init__(
        self,
        shard: str,
        worker: str,
        registry: MetricsRegistry | None = None,
        collector: SpanCollector | None = None,
        events: EventLog | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_spans < 1 or max_events < 1:
            raise ValueError("snapshot bounds must be at least 1")
        self.shard = shard
        self.worker = worker
        self._registry = registry if registry is not None else get_registry()
        self._collector = collector
        self._events = events if events is not None else get_events()
        self.max_spans = max_spans
        self.max_events = max_events
        self._seq = 0
        # high-water marks of the ring buffers' lifetime counters, used
        # to detect evictions that happened *between* takes
        self._spans_seen = 0
        self._events_seen = 0

    @property
    def collector(self) -> SpanCollector | None:
        return self._collector if self._collector is not None else _tracing_mod.get_collector()

    def take(self) -> TelemetrySnapshot:
        """Drain everything recorded since the last take into a snapshot."""
        self._seq += 1

        metrics = self._registry.snapshot()
        self._registry.reset()

        dropped_spans = 0
        span_payloads: tuple = ()
        collector = self.collector
        if collector is not None:
            spans = collector.spans()
            collector.clear()
            # spans evicted by the ring before we drained are already
            # gone; added_total keeps honest books
            dropped_spans += collector.added_total - self._spans_seen - len(spans)
            self._spans_seen = collector.added_total
            if len(spans) > self.max_spans:
                dropped_spans += len(spans) - self.max_spans
                spans = spans[-self.max_spans :]
            span_payloads = tuple(s.to_dict() for s in spans)

        events = self._events.events()
        self._events.clear()
        dropped_events = self._events.emitted_total - self._events_seen - len(events)
        self._events_seen = self._events.emitted_total
        if len(events) > self.max_events:
            dropped_events += len(events) - self.max_events
            events = events[-self.max_events :]
        event_payloads = tuple(e.to_dict() for e in events)

        return TelemetrySnapshot(
            worker_pid=os.getpid(),
            worker=self.worker,
            shard=self.shard,
            seq=self._seq,
            metrics=metrics,
            spans=span_payloads,
            events=event_payloads,
            dropped_spans=max(0, dropped_spans),
            dropped_events=max(0, dropped_events),
        )


_active_capture: TelemetryCapture | None = None


def install_worker_capture(
    shard: str,
    worker: str,
    max_spans: int = DEFAULT_MAX_SPANS,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> TelemetryCapture:
    """Set up a freshly forked worker process for delta capture.

    Resets the (fork-copied) default registry and event log so the first
    capture is a true delta rather than a replay of the parent's
    pre-fork totals, installs a fresh span collector, and reseeds span
    ids into a pid-salted range (``pid << 32``) so worker-minted span
    ids are globally unique across the merged trace.
    """
    get_registry().reset()
    get_events().clear()
    collector = install_collector(SpanCollector())
    reseed_span_ids((os.getpid() << 32) + 1)
    global _active_capture
    _active_capture = TelemetryCapture(
        shard=shard,
        worker=worker,
        collector=collector,
        max_spans=max_spans,
        max_events=max_events,
    )
    return _active_capture


def get_capture() -> TelemetryCapture | None:
    return _active_capture


def uninstall_capture() -> None:
    global _active_capture
    _active_capture = None


class TelemetryMerger:
    """Parent-side fold of worker snapshots into this process's telemetry.

    ``registry``/``events`` default to the process singletons; the span
    destination is resolved **per merge** from the active collector (so
    a collector installed after the merger was built still receives
    worker spans) unless one is pinned explicitly.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        collector: SpanCollector | None = None,
        events: EventLog | None = None,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._collector = collector
        self._events = events
        self._last_seq: dict[int, int] = {}
        self.merged_total = 0
        self.duplicate_total = 0

    def merge(self, snapshot: TelemetrySnapshot | None) -> bool:
        """Fold one snapshot in; returns False if it was a duplicate.

        A duplicate (same ``(worker_pid, seq)`` already merged — e.g. a
        batch re-dispatched after a crash mid-reply carrying the sibling
        retransmission of a snapshot that already landed) is dropped
        whole and counted into ``repro_obs_dropped_total``.
        """
        if snapshot is None:
            return False
        last = self._last_seq.get(snapshot.worker_pid, 0)
        if snapshot.seq <= last:
            self.duplicate_total += 1
            self._dropped().inc(kind="duplicate_snapshot")
            return False
        self._last_seq[snapshot.worker_pid] = snapshot.seq
        self.merged_total += 1

        extra = {"shard": snapshot.shard, "worker_pid": snapshot.worker_pid}
        if snapshot.metrics:
            self._registry.merge_snapshot(snapshot.metrics, extra_labels=extra)

        collector = (
            self._collector
            if self._collector is not None
            else _tracing_mod.get_collector()
        )
        if collector is not None:
            for payload in snapshot.spans:
                attrs = dict(payload.get("attrs", {}))
                attrs.setdefault("worker_pid", snapshot.worker_pid)
                attrs.setdefault("shard", snapshot.shard)
                collector.add(
                    Span(
                        name=payload["name"],
                        span_id=payload["span_id"],
                        parent_id=payload.get("parent_id"),
                        trace_id=payload.get("trace_id"),
                        start=payload["start"],
                        end=payload["end"],
                        status=payload.get("status", "ok"),
                        attrs=attrs,
                    )
                )
        elif snapshot.spans:
            self._dropped().inc(len(snapshot.spans), kind="span")

        events = self._events if self._events is not None else get_events()
        for payload in snapshot.events:
            fields = {
                k: v for k, v in payload.items() if k not in ("kind", "seconds")
            }
            fields.setdefault("worker_pid", snapshot.worker_pid)
            fields.setdefault("worker_seconds", payload.get("seconds"))
            events.emit(payload["kind"], **fields)

        if snapshot.dropped_spans:
            self._dropped().inc(snapshot.dropped_spans, kind="span")
        if snapshot.dropped_events:
            self._dropped().inc(snapshot.dropped_events, kind="event")
        return True

    def _dropped(self):
        return self._registry.counter(
            OBS_DROPPED,
            "Telemetry items lost to bounded buffers or duplicate dedupe",
        )
