"""Structured event log for discrete occurrences.

Where metrics aggregate and spans time, events *narrate*: a circuit
breaker tripping OPEN, a query degrading to a fallback tier, a rule
violation being sanitized, a NaN being caught.  Each event is a kind
plus free-form fields and a monotonic timestamp, kept in a ring buffer
so tests can assert on exact *sequences* (e.g. the breaker walking
CLOSED -> OPEN -> HALF_OPEN -> CLOSED) instead of polling state.

A module-level default log is always installed — emitting an event is a
dataclass construction and a deque append, cheap enough to leave on.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from types import MappingProxyType

from .clock import perf_counter


@dataclass(frozen=True)
class Event:
    """One discrete occurrence."""

    kind: str
    #: monotonic timestamp (comparable to span start/end times)
    seconds: float
    fields: MappingProxyType = field(default_factory=lambda: MappingProxyType({}))

    def __getitem__(self, key: str):
        return self.fields[key]

    def get(self, key: str, default=None):
        return self.fields.get(key, default)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "seconds": self.seconds, **dict(self.fields)}


class EventLog:
    """Ring buffer of :class:`Event` records."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._events: deque[Event] = deque(maxlen=capacity)
        #: events ever emitted — ``emitted_total - len(self)`` (since the
        #: last drain) is how many the ring evicted; the telemetry
        #: transport surfaces that as an explicit drop count
        self.emitted_total = 0

    def emit(self, kind: str, **fields) -> Event:
        event = Event(
            kind=kind,
            seconds=perf_counter(),
            fields=MappingProxyType(dict(fields)),
        )
        self._events.append(event)
        self.emitted_total += 1
        return event

    def events(self, kind: str | None = None, **match) -> list[Event]:
        """Events in emission order, filtered by kind and field values."""
        selected = [
            e
            for e in self._events
            if (kind is None or e.kind == kind)
            and all(e.get(k) == v for k, v in match.items())
        ]
        return selected

    def kinds(self) -> _Counter:
        return _Counter(e.kind for e in self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def to_jsonl(self, path) -> int:
        events = list(self._events)
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True, default=str))
                fh.write("\n")
        return len(events)


_default_log = EventLog()


def get_events() -> EventLog:
    """The process-wide default event log."""
    return _default_log


def emit(kind: str, **fields) -> Event:
    """Emit onto the default log."""
    return _default_log.emit(kind, **fields)
