"""Hyper-parameter search strategies (paper Section 7.1).

Table 5 shows that untuned neural estimators can be worse by factors up
to 10^5, and the paper names random search [Bergstra & Bengio 2012] and
bandit-based successive halving [Li et al. 2017, "Hyperband"] as the
tools to control tuning cost.  This module implements three strategies
behind one interface:

* :func:`grid_search` — exhaustive over a :class:`SearchSpace`;
* :func:`random_search` — a fixed number of sampled configurations;
* :func:`successive_halving` — start many configurations on a small
  epoch budget, keep the best ``1/eta`` fraction, grow the budget.

Scores are validation-workload q-errors: query-driven methods tune on
held-out queries, data-driven ones may use the same signal or their own
training loss (the paper tunes Naru by loss; pass ``score="loss"``).

Every strategy accepts ``parallelism=N`` (or a preconfigured
:class:`~repro.parallel.ParallelExecutor`): trials are independent
training runs — the Table 5 cost the paper complains about — so they
fan across worker processes.  Configurations are sampled *before* the
fan-out and results are reduced in trial order, so a parallel search is
bit-identical to a serial one (same trials, same scores, same winner).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.metrics import qerrors
from ..core.table import Table
from ..core.workload import Workload
from ..parallel import ParallelExecutor

#: A builder takes a configuration dict and returns an unfit estimator.
Builder = Callable[[Mapping[str, object]], CardinalityEstimator]


class SearchSpace:
    """A finite hyper-parameter space: name -> list of candidate values."""

    def __init__(self, axes: Mapping[str, list]) -> None:
        if not axes:
            raise ValueError("search space must have at least one axis")
        for name, values in axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no candidate values")
        self.axes = {name: list(values) for name, values in axes.items()}

    def grid(self) -> list[dict[str, object]]:
        """Every combination, in a deterministic order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def sample(self, rng: np.random.Generator) -> dict[str, object]:
        """One uniformly random configuration."""
        return {
            name: values[int(rng.integers(len(values)))]
            for name, values in self.axes.items()
        }

    @property
    def size(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration."""

    config: dict[str, object]
    score: float
    fit_seconds: float


@dataclass
class TuningResult:
    """Outcome of a search: the winner plus the full trial history."""

    best_config: dict[str, object]
    best_score: float
    best_estimator: CardinalityEstimator
    trials: list[Trial] = field(default_factory=list)

    @property
    def total_fit_seconds(self) -> float:
        """Total training cost of the search (the Table 5 pain point)."""
        return sum(t.fit_seconds for t in self.trials)

    @property
    def worst_best_ratio(self) -> float:
        """Table 5's metric: worst / best score across all trials."""
        scores = [t.score for t in self.trials]
        return max(scores) / max(min(scores), 1e-12)


def validation_score(
    estimator: CardinalityEstimator, validation: Workload
) -> float:
    """Geometric-mean q-error on the validation workload (lower = better)."""
    estimates = estimator.estimate_many(list(validation.queries))
    errors = qerrors(estimates, validation.cardinalities)
    return float(np.exp(np.log(errors).mean()))


def _run_trial(
    build: Builder,
    config: Mapping[str, object],
    table: Table,
    train: Workload | None,
    validation: Workload,
) -> tuple[CardinalityEstimator, Trial]:
    estimator = build(config)
    estimator.fit(table, train if estimator.requires_workload else None)
    score = validation_score(estimator, validation)
    trial = Trial(dict(config), score, estimator.timing.fit_seconds)
    return estimator, trial


def _trial_task(
    item: tuple, _rng: np.random.Generator
) -> tuple[CardinalityEstimator, Trial]:
    """Executor task body for one trial.

    The builder, table and workloads reach the worker through
    fork-inherited memory (the item tuple), so nothing on the input side
    pickles.  The executor-derived rng is deliberately unused: every
    estimator seeds itself from its own configuration, which is what
    keeps a parallel search bit-identical to a serial one.
    """
    build, config, table, train, validation = item
    return _run_trial(build, config, table, train, validation)


def _resolve_executor(
    parallelism: int, executor: ParallelExecutor | None
) -> ParallelExecutor | None:
    """An explicit executor wins; otherwise build one for ``parallelism``
    workers (``None`` for 1 — the plain in-process loop)."""
    if executor is not None:
        return executor
    if parallelism < 1:
        raise ValueError("parallelism must be at least 1")
    if parallelism == 1:
        return None
    return ParallelExecutor(max_workers=parallelism)


def _run_trials(
    build: Builder,
    configs: list[dict[str, object]],
    table: Table,
    train: Workload | None,
    validation: Workload,
    parallelism: int,
    executor: ParallelExecutor | None,
) -> list[tuple[CardinalityEstimator, Trial]]:
    """All trials, in config order — in-process or fanned across workers."""
    executor = _resolve_executor(parallelism, executor)
    if executor is None:
        return [
            _run_trial(build, config, table, train, validation)
            for config in configs
        ]
    items = [(build, config, table, train, validation) for config in configs]
    return executor.map_tasks(_trial_task, items)


def grid_search(
    build: Builder,
    space: SearchSpace,
    table: Table,
    train: Workload | None,
    validation: Workload,
    max_trials: int | None = None,
    parallelism: int = 1,
    executor: ParallelExecutor | None = None,
) -> TuningResult:
    """Exhaustive search (optionally truncated to ``max_trials``)."""
    configs = space.grid()
    if max_trials is not None:
        configs = configs[:max_trials]
    return _search_over(
        build, configs, table, train, validation, parallelism, executor
    )


def random_search(
    build: Builder,
    space: SearchSpace,
    table: Table,
    train: Workload | None,
    validation: Workload,
    num_trials: int,
    rng: np.random.Generator,
    parallelism: int = 1,
    executor: ParallelExecutor | None = None,
) -> TuningResult:
    """Evaluate ``num_trials`` uniformly sampled configurations.

    Configurations are drawn from ``rng`` up front (so the sampled set
    does not depend on ``parallelism``), then fanned out.
    """
    if num_trials < 1:
        raise ValueError("need at least one trial")
    configs = [space.sample(rng) for _ in range(num_trials)]
    return _search_over(
        build, configs, table, train, validation, parallelism, executor
    )


def _search_over(
    build: Builder,
    configs: list[dict[str, object]],
    table: Table,
    train: Workload | None,
    validation: Workload,
    parallelism: int = 1,
    executor: ParallelExecutor | None = None,
) -> TuningResult:
    if not configs:
        raise ValueError("no configurations to evaluate")
    outcomes = _run_trials(
        build, configs, table, train, validation, parallelism, executor
    )
    trials: list[Trial] = []
    best: tuple[float, CardinalityEstimator, dict] | None = None
    # First-best tie-break over the config order: identical to the serial
    # loop because map_tasks returns results in task order.
    for estimator, trial in outcomes:
        trials.append(trial)
        if best is None or trial.score < best[0]:
            best = (trial.score, estimator, trial.config)
    assert best is not None
    return TuningResult(
        best_config=best[2],
        best_score=best[0],
        best_estimator=best[1],
        trials=trials,
    )


def successive_halving(
    build: Builder,
    space: SearchSpace,
    table: Table,
    train: Workload | None,
    validation: Workload,
    rng: np.random.Generator,
    num_configs: int = 8,
    eta: int = 2,
    min_epochs: int = 1,
    max_epochs: int = 8,
    epochs_key: str = "epochs",
    parallelism: int = 1,
    executor: ParallelExecutor | None = None,
) -> TuningResult:
    """Successive halving over the epoch budget.

    All configurations start at ``min_epochs``; each rung keeps the best
    ``1/eta`` and multiplies the budget by ``eta`` until ``max_epochs``.
    The configuration dict's ``epochs_key`` entry is overridden with the
    rung's budget (the builder must honour it).  With ``parallelism``
    each rung's configurations train concurrently; rungs themselves stay
    sequential (each needs the previous rung's scores).
    """
    if num_configs < 2:
        raise ValueError("need at least two configurations to halve")
    if eta < 2:
        raise ValueError("eta must be at least 2")
    survivors = [space.sample(rng) for _ in range(num_configs)]
    epochs = min_epochs
    trials: list[Trial] = []
    best: tuple[float, CardinalityEstimator, dict] | None = None
    while True:
        staged_configs = []
        for config in survivors:
            staged = dict(config)
            staged[epochs_key] = epochs
            staged_configs.append(staged)
        outcomes = _run_trials(
            build, staged_configs, table, train, validation, parallelism, executor
        )
        scored: list[tuple[float, dict]] = []
        for config, (estimator, trial) in zip(survivors, outcomes):
            trials.append(trial)
            scored.append((trial.score, config))
            if best is None or trial.score < best[0]:
                best = (trial.score, estimator, trial.config)
        if len(survivors) <= 1 or epochs >= max_epochs:
            break
        scored.sort(key=lambda pair: pair[0])
        keep = max(1, len(scored) // eta)
        survivors = [config for _, config in scored[:keep]]
        epochs = min(epochs * eta, max_epochs)
    assert best is not None
    return TuningResult(
        best_config=best[2],
        best_score=best[0],
        best_estimator=best[1],
        trials=trials,
    )
