"""Hyper-parameter search strategies (paper Section 7.1)."""

from .search import (
    SearchSpace,
    Trial,
    TuningResult,
    grid_search,
    random_search,
    successive_halving,
    validation_score,
)

__all__ = [
    "SearchSpace",
    "Trial",
    "TuningResult",
    "grid_search",
    "random_search",
    "successive_halving",
    "validation_score",
]
