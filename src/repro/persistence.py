"""Model persistence: save a fitted estimator to disk and load it back.

A production deployment trains estimators offline (the expensive part —
see Figure 4) and ships the fitted artifact to the optimizer process.
This module provides that boundary: a small versioned container around
Python pickling, with integrity checks on load.

Estimators are plain Python objects over numpy arrays, so pickle is both
complete and compact here; the header guards against loading artifacts
from incompatible library versions, and a SHA-256 content checksum makes
a truncated or bit-flipped artifact fail loudly instead of unpickling
garbage into the serving path.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path

from .core.estimator import CardinalityEstimator

#: Bumped whenever a change breaks estimator attribute layout or the
#: on-disk container (version 2 added the payload checksum).
FORMAT_VERSION = 2

_MAGIC = b"repro-estimator"
_DIGEST_BYTES = hashlib.sha256().digest_size


@dataclass(frozen=True)
class ArtifactInfo:
    """Metadata stored alongside a persisted estimator."""

    format_version: int
    estimator_name: str
    estimator_class: str
    table_name: str
    num_rows: int


class PersistenceError(RuntimeError):
    """Raised when an artifact cannot be read back safely."""


def save_estimator(estimator: CardinalityEstimator, path: str | Path) -> ArtifactInfo:
    """Persist a *fitted* estimator; returns the stored metadata."""
    try:
        table = estimator.table
    except RuntimeError as exc:
        raise PersistenceError("only fitted estimators can be saved") from exc
    info = ArtifactInfo(
        format_version=FORMAT_VERSION,
        estimator_name=estimator.name,
        estimator_class=type(estimator).__qualname__,
        table_name=table.name,
        num_rows=table.num_rows,
    )
    payload = pickle.dumps({"info": info, "estimator": estimator},
                           protocol=pickle.HIGHEST_PROTOCOL)
    checksum = hashlib.sha256(payload).digest()
    path = Path(path)
    path.write_bytes(_MAGIC + checksum + payload)
    return info


def load_info(path: str | Path) -> ArtifactInfo:
    """Read only the metadata of an artifact."""
    return _load(path)["info"]


def load_estimator(path: str | Path) -> CardinalityEstimator:
    """Load a previously saved estimator, ready to answer queries."""
    bundle = _load(path)
    estimator = bundle["estimator"]
    if not isinstance(estimator, CardinalityEstimator):
        raise PersistenceError("artifact does not contain an estimator")
    return estimator


def _load(path: str | Path) -> dict:
    data = Path(path).read_bytes()
    if not data.startswith(_MAGIC):
        raise PersistenceError(f"{path} is not a repro estimator artifact")
    body = data[len(_MAGIC):]
    if len(body) < _DIGEST_BYTES:
        raise PersistenceError(f"{path} is truncated (no checksum header)")
    checksum, payload = body[:_DIGEST_BYTES], body[_DIGEST_BYTES:]
    if hashlib.sha256(payload).digest() != checksum:
        raise PersistenceError(
            f"{path} failed its content checksum; the artifact is corrupted"
        )
    try:
        bundle = pickle.loads(payload)
    except Exception as exc:  # pickle raises many concrete types
        raise PersistenceError(f"could not unpickle {path}: {exc}") from exc
    info = bundle.get("info")
    if not isinstance(info, ArtifactInfo):
        raise PersistenceError(f"{path} has no artifact metadata")
    if info.format_version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} was written with format {info.format_version}, "
            f"this library reads format {FORMAT_VERSION}"
        )
    return bundle
