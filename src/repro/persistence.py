"""Model persistence: save a fitted estimator to disk and load it back.

A production deployment trains estimators offline (the expensive part —
see Figure 4) and ships the fitted artifact to the optimizer process.
This module provides that boundary: a small versioned container around
Python pickling, with integrity checks on load.

Estimators are plain Python objects over numpy arrays, so pickle is both
complete and compact here; the header guards against loading artifacts
from incompatible library versions, and a SHA-256 content checksum makes
a truncated or bit-flipped artifact fail loudly instead of unpickling
garbage into the serving path.

Two layers:

* :func:`save_bundle` / :func:`load_bundle` — the generic checksummed
  container (magic, SHA-256, pickled dict with a ``kind`` tag).  All
  writes are **atomic**: the bytes go to a temporary file in the target
  directory, are fsynced, and only then renamed over the final path, so
  a crash mid-write can never leave a torn artifact where a reader looks
  for one.  :mod:`repro.lifecycle` stores its training checkpoints in
  this container.
* :func:`save_estimator` / :func:`load_estimator` — the estimator
  artifact format built on top, with :class:`ArtifactInfo` metadata.

Format 3 splits every sizeable ndarray out of the pickle stream
(:func:`split_tensors`) and stores it in a contiguous, 64-byte-aligned
tensor blob behind a per-tensor dtype/shape table.  The pickle that
remains — the *skeleton* — is just object structure and scalars.  The
same split/join machinery backs :class:`repro.shard.shm.ModelArena`,
which maps the identical layout into ``multiprocessing.shared_memory``
so forked workers can attach read-only tensor views instead of
receiving a pickled model.  Format-2 artifacts still load.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from .core.estimator import CardinalityEstimator

#: Bumped whenever a change breaks estimator attribute layout or the
#: on-disk container (version 2 added the payload checksum; version 3
#: moved ndarrays out of the pickle into an aligned tensor blob).
FORMAT_VERSION = 3

#: Format versions :func:`load_bundle` / :func:`load_estimator` accept.
COMPATIBLE_VERSIONS = (2, 3)

_MAGIC = b"repro-estimator"
_DIGEST_BYTES = hashlib.sha256().digest_size

#: ``kind`` tag of estimator artifacts (bundles without a tag predate
#: the generic container and are treated as estimator artifacts).
ESTIMATOR_KIND = "estimator"


@dataclass(frozen=True)
class ArtifactInfo:
    """Metadata stored alongside a persisted estimator."""

    format_version: int
    estimator_name: str
    estimator_class: str
    table_name: str
    num_rows: int


class PersistenceError(RuntimeError):
    """Raised when an artifact cannot be read back safely."""


# ----------------------------------------------------------------------
# Tensor split/join (shared with repro.shard.shm)
# ----------------------------------------------------------------------
#: Arrays smaller than this stay inline in the skeleton pickle — the
#: out-of-band bookkeeping costs more than it saves below this size.
MIN_TENSOR_BYTES = 256

#: Tag used for out-of-band tensor references in the skeleton pickle.
_TENSOR_TAG = "repro-tensor"

#: Tensor offsets are aligned so attached views are cache-line aligned
#: (and safely aligned for any numpy dtype).
TENSOR_ALIGN = 64


class _TensorPickler(pickle.Pickler):
    """Pickler that extracts large ndarrays as out-of-band tensors.

    Arrays are deduplicated by object identity (a model whose layers
    share a weight array stays shared after a join) and snapshotted
    contiguously so the blob layout is a straight byte copy.
    """

    def __init__(self, file: io.BytesIO, min_bytes: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._min_bytes = min_bytes
        self.tensors: list[np.ndarray] = []
        self._index: dict[int, int] = {}
        # ``id()`` keys are only stable while the object is alive;
        # pin every extracted array (pickle's memo does not hold
        # persistent-id'd objects, and __reduce__ can yield temporaries).
        self._pinned: list[np.ndarray] = []

    def persistent_id(self, obj: object):  # noqa: D102 (pickle hook)
        if type(obj) is np.ndarray and obj.nbytes >= self._min_bytes:
            idx = self._index.get(id(obj))
            if idx is None:
                idx = len(self.tensors)
                self._index[id(obj)] = idx
                self._pinned.append(obj)
                self.tensors.append(np.ascontiguousarray(obj))
            return (_TENSOR_TAG, idx)
        return None


class _TensorUnpickler(pickle.Unpickler):
    """Unpickler resolving tensor references against a provided list."""

    def __init__(self, file: io.BytesIO, tensors: Sequence[np.ndarray]) -> None:
        super().__init__(file)
        self._tensors = tensors

    def persistent_load(self, pid: object) -> np.ndarray:  # noqa: D102
        if (
            isinstance(pid, tuple)
            and len(pid) == 2
            and pid[0] == _TENSOR_TAG
            and isinstance(pid[1], int)
            and 0 <= pid[1] < len(self._tensors)
        ):
            return self._tensors[pid[1]]
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def split_tensors(
    obj: object, *, min_bytes: int = MIN_TENSOR_BYTES
) -> tuple[bytes, list[np.ndarray]]:
    """Pickle ``obj`` with large ndarrays factored out.

    Returns ``(skeleton, tensors)``: the skeleton is a pickle holding
    ``(tag, index)`` references where the arrays were, and ``tensors``
    are contiguous snapshots in reference order.  Inverse of
    :func:`join_tensors`.
    """
    buffer = io.BytesIO()
    pickler = _TensorPickler(buffer, min_bytes)
    pickler.dump(obj)
    return buffer.getvalue(), pickler.tensors


def join_tensors(skeleton: bytes, tensors: Sequence[np.ndarray]) -> object:
    """Rebuild a :func:`split_tensors` object around ``tensors``.

    The arrays are installed as-is — pass shared-memory views to attach
    a zero-copy model, or fresh copies to materialise a private one.
    """
    return _TensorUnpickler(io.BytesIO(skeleton), tensors).load()


def _aligned(offset: int) -> int:
    return (offset + TENSOR_ALIGN - 1) // TENSOR_ALIGN * TENSOR_ALIGN


def tensor_table(
    tensors: Sequence[np.ndarray],
) -> tuple[list[tuple[str, tuple[int, ...], int, int]], int]:
    """Lay out ``tensors`` back to back with aligned offsets.

    Returns ``(table, total_bytes)`` where each table row is
    ``(dtype_descr, shape, offset, nbytes)``.  The descr string comes
    from :func:`numpy.lib.format.dtype_to_descr`, the same stable
    encoding ``.npy`` files use.
    """
    table: list[tuple[str, tuple[int, ...], int, int]] = []
    offset = 0
    for tensor in tensors:
        offset = _aligned(offset)
        table.append(
            (
                np.lib.format.dtype_to_descr(tensor.dtype),
                tuple(tensor.shape),
                offset,
                tensor.nbytes,
            )
        )
        offset += tensor.nbytes
    return table, offset


def write_tensors(
    tensors: Sequence[np.ndarray],
    table: Sequence[tuple[str, tuple[int, ...], int, int]],
    buf,
) -> None:
    """Copy each tensor's bytes into ``buf`` at its table offset."""
    view = np.frombuffer(buf, dtype=np.uint8)
    for tensor, (_descr, _shape, offset, nbytes) in zip(tensors, table):
        view[offset : offset + nbytes] = np.frombuffer(
            tensor, dtype=np.uint8, count=nbytes
        )


def read_tensors(
    table: Sequence[tuple[str, tuple[int, ...], int, int]],
    buf,
    *,
    copy: bool,
) -> list[np.ndarray]:
    """Materialise the arrays a :func:`tensor_table` describes.

    With ``copy=False`` the arrays are read-only views into ``buf``
    (the caller must keep the buffer alive — e.g. the shared-memory
    segment); with ``copy=True`` they are private writable copies.
    """
    arrays: list[np.ndarray] = []
    for descr, shape, offset, nbytes in table:
        dtype = np.lib.format.descr_to_dtype(descr)
        array = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
        if array.nbytes != nbytes:
            raise PersistenceError(
                f"tensor table mismatch: {shape} {descr} is "
                f"{array.nbytes} bytes, table says {nbytes}"
            )
        if copy:
            array = array.copy()
        else:
            array.flags.writeable = False
        arrays.append(array)
    return arrays


# ----------------------------------------------------------------------
# Atomic checksummed container (generic layer)
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp file, fsync, rename.

    A crash at any point leaves either the previous contents of ``path``
    or the complete new contents — never a torn prefix.  The temporary
    file lives in the target directory so the final ``os.replace`` is a
    same-filesystem rename.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Persist the rename itself (directory entry). Best-effort: some
    # filesystems refuse O_RDONLY opens of directories.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def save_bundle(obj: object, path: str | Path, *, kind: str) -> None:
    """Persist ``obj`` in the checksummed container, tagged ``kind``.

    The write is atomic (:func:`atomic_write_bytes`); the load side
    verifies the checksum and the ``kind`` tag before unpickling is
    trusted, so a truncated/corrupt file or a bundle of the wrong kind
    raises :class:`PersistenceError` instead of leaking garbage.
    """
    payload = pickle.dumps(
        {"kind": kind, "format_version": FORMAT_VERSION}
        | _split_payload(obj),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    checksum = hashlib.sha256(payload).digest()
    atomic_write_bytes(path, _MAGIC + checksum + payload)


def _split_payload(obj: object) -> dict:
    """Format-3 payload fields: skeleton pickle + tensor table + blob."""
    skeleton, tensors = split_tensors(obj)
    table, total = tensor_table(tensors)
    blob = bytearray(total)
    write_tensors(tensors, table, blob)
    return {"skeleton": skeleton, "tensors": table, "blob": bytes(blob)}


def _join_payload(bundle: dict, path: str | Path) -> object:
    """Rebuild a format-3 payload (private, writable tensor copies)."""
    try:
        arrays = read_tensors(bundle["tensors"], bundle["blob"], copy=True)
        return join_tensors(bundle["skeleton"], arrays)
    except (KeyError, ValueError, pickle.UnpicklingError) as exc:
        raise PersistenceError(f"{path} has a torn tensor table: {exc}") from exc


def _check_version(version: object, path: str | Path) -> None:
    if version not in COMPATIBLE_VERSIONS:
        raise PersistenceError(
            f"{path} was written with format {version}, "
            f"this library reads formats {COMPATIBLE_VERSIONS}"
        )


def load_bundle(path: str | Path, *, kind: str) -> object:
    """Load a :func:`save_bundle` artifact, verifying its ``kind``."""
    bundle = _read_checked(path)
    found = bundle.get("kind")
    if found != kind:
        raise PersistenceError(
            f"{path} is a {found!r} bundle, expected {kind!r}"
        )
    _check_version(bundle.get("format_version"), path)
    if "payload" in bundle:  # format 2: inline pickle
        return bundle["payload"]
    return _join_payload(bundle, path)


# ----------------------------------------------------------------------
# Estimator artifacts (built on the generic layer)
# ----------------------------------------------------------------------
def save_estimator(estimator: CardinalityEstimator, path: str | Path) -> ArtifactInfo:
    """Persist a *fitted* estimator; returns the stored metadata."""
    try:
        table = estimator.table
    except RuntimeError as exc:
        raise PersistenceError("only fitted estimators can be saved") from exc
    info = ArtifactInfo(
        format_version=FORMAT_VERSION,
        estimator_name=estimator.name,
        estimator_class=type(estimator).__qualname__,
        table_name=table.name,
        num_rows=table.num_rows,
    )
    payload = pickle.dumps(
        {"info": info} | _split_payload(estimator),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    checksum = hashlib.sha256(payload).digest()
    atomic_write_bytes(path, _MAGIC + checksum + payload)
    return info


def load_info(path: str | Path) -> ArtifactInfo:
    """Read only the metadata of an artifact."""
    return _load_estimator_bundle(path)["info"]


def load_estimator(path: str | Path) -> CardinalityEstimator:
    """Load a previously saved estimator, ready to answer queries."""
    bundle = _load_estimator_bundle(path)
    estimator = bundle["estimator"]
    if not isinstance(estimator, CardinalityEstimator):
        raise PersistenceError("artifact does not contain an estimator")
    return estimator


def _read_checked(path: str | Path) -> dict:
    """Magic + checksum + unpickle; the integrity layer shared by both
    estimator artifacts and generic bundles."""
    data = Path(path).read_bytes()
    if not data.startswith(_MAGIC):
        raise PersistenceError(f"{path} is not a repro estimator artifact")
    body = data[len(_MAGIC):]
    if len(body) < _DIGEST_BYTES:
        raise PersistenceError(f"{path} is truncated (no checksum header)")
    checksum, payload = body[:_DIGEST_BYTES], body[_DIGEST_BYTES:]
    if hashlib.sha256(payload).digest() != checksum:
        raise PersistenceError(
            f"{path} failed its content checksum; the artifact is corrupted"
        )
    try:
        bundle = pickle.loads(payload)
    except Exception as exc:  # pickle raises many concrete types
        raise PersistenceError(f"could not unpickle {path}: {exc}") from exc
    if not isinstance(bundle, dict):
        raise PersistenceError(f"{path} does not contain a repro bundle")
    return bundle


def _load_estimator_bundle(path: str | Path) -> dict:
    bundle = _read_checked(path)
    info = bundle.get("info")
    if not isinstance(info, ArtifactInfo):
        raise PersistenceError(f"{path} has no artifact metadata")
    _check_version(info.format_version, path)
    if "estimator" not in bundle:  # format 3: join skeleton + tensors
        bundle["estimator"] = _join_payload(bundle, path)
    return bundle
