"""Model persistence: save a fitted estimator to disk and load it back.

A production deployment trains estimators offline (the expensive part —
see Figure 4) and ships the fitted artifact to the optimizer process.
This module provides that boundary: a small versioned container around
Python pickling, with integrity checks on load.

Estimators are plain Python objects over numpy arrays, so pickle is both
complete and compact here; the header guards against loading artifacts
from incompatible library versions, and a SHA-256 content checksum makes
a truncated or bit-flipped artifact fail loudly instead of unpickling
garbage into the serving path.

Two layers:

* :func:`save_bundle` / :func:`load_bundle` — the generic checksummed
  container (magic, SHA-256, pickled dict with a ``kind`` tag).  All
  writes are **atomic**: the bytes go to a temporary file in the target
  directory, are fsynced, and only then renamed over the final path, so
  a crash mid-write can never leave a torn artifact where a reader looks
  for one.  :mod:`repro.lifecycle` stores its training checkpoints in
  this container.
* :func:`save_estimator` / :func:`load_estimator` — the estimator
  artifact format built on top, with :class:`ArtifactInfo` metadata.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .core.estimator import CardinalityEstimator

#: Bumped whenever a change breaks estimator attribute layout or the
#: on-disk container (version 2 added the payload checksum).
FORMAT_VERSION = 2

_MAGIC = b"repro-estimator"
_DIGEST_BYTES = hashlib.sha256().digest_size

#: ``kind`` tag of estimator artifacts (bundles without a tag predate
#: the generic container and are treated as estimator artifacts).
ESTIMATOR_KIND = "estimator"


@dataclass(frozen=True)
class ArtifactInfo:
    """Metadata stored alongside a persisted estimator."""

    format_version: int
    estimator_name: str
    estimator_class: str
    table_name: str
    num_rows: int


class PersistenceError(RuntimeError):
    """Raised when an artifact cannot be read back safely."""


# ----------------------------------------------------------------------
# Atomic checksummed container (generic layer)
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp file, fsync, rename.

    A crash at any point leaves either the previous contents of ``path``
    or the complete new contents — never a torn prefix.  The temporary
    file lives in the target directory so the final ``os.replace`` is a
    same-filesystem rename.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Persist the rename itself (directory entry). Best-effort: some
    # filesystems refuse O_RDONLY opens of directories.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def save_bundle(obj: object, path: str | Path, *, kind: str) -> None:
    """Persist ``obj`` in the checksummed container, tagged ``kind``.

    The write is atomic (:func:`atomic_write_bytes`); the load side
    verifies the checksum and the ``kind`` tag before unpickling is
    trusted, so a truncated/corrupt file or a bundle of the wrong kind
    raises :class:`PersistenceError` instead of leaking garbage.
    """
    payload = pickle.dumps(
        {"kind": kind, "format_version": FORMAT_VERSION, "payload": obj},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    checksum = hashlib.sha256(payload).digest()
    atomic_write_bytes(path, _MAGIC + checksum + payload)


def load_bundle(path: str | Path, *, kind: str) -> object:
    """Load a :func:`save_bundle` artifact, verifying its ``kind``."""
    bundle = _read_checked(path)
    found = bundle.get("kind")
    if found != kind:
        raise PersistenceError(
            f"{path} is a {found!r} bundle, expected {kind!r}"
        )
    version = bundle.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} was written with format {version}, "
            f"this library reads format {FORMAT_VERSION}"
        )
    return bundle["payload"]


# ----------------------------------------------------------------------
# Estimator artifacts (built on the generic layer)
# ----------------------------------------------------------------------
def save_estimator(estimator: CardinalityEstimator, path: str | Path) -> ArtifactInfo:
    """Persist a *fitted* estimator; returns the stored metadata."""
    try:
        table = estimator.table
    except RuntimeError as exc:
        raise PersistenceError("only fitted estimators can be saved") from exc
    info = ArtifactInfo(
        format_version=FORMAT_VERSION,
        estimator_name=estimator.name,
        estimator_class=type(estimator).__qualname__,
        table_name=table.name,
        num_rows=table.num_rows,
    )
    payload = pickle.dumps({"info": info, "estimator": estimator},
                           protocol=pickle.HIGHEST_PROTOCOL)
    checksum = hashlib.sha256(payload).digest()
    atomic_write_bytes(path, _MAGIC + checksum + payload)
    return info


def load_info(path: str | Path) -> ArtifactInfo:
    """Read only the metadata of an artifact."""
    return _load_estimator_bundle(path)["info"]


def load_estimator(path: str | Path) -> CardinalityEstimator:
    """Load a previously saved estimator, ready to answer queries."""
    bundle = _load_estimator_bundle(path)
    estimator = bundle["estimator"]
    if not isinstance(estimator, CardinalityEstimator):
        raise PersistenceError("artifact does not contain an estimator")
    return estimator


def _read_checked(path: str | Path) -> dict:
    """Magic + checksum + unpickle; the integrity layer shared by both
    estimator artifacts and generic bundles."""
    data = Path(path).read_bytes()
    if not data.startswith(_MAGIC):
        raise PersistenceError(f"{path} is not a repro estimator artifact")
    body = data[len(_MAGIC):]
    if len(body) < _DIGEST_BYTES:
        raise PersistenceError(f"{path} is truncated (no checksum header)")
    checksum, payload = body[:_DIGEST_BYTES], body[_DIGEST_BYTES:]
    if hashlib.sha256(payload).digest() != checksum:
        raise PersistenceError(
            f"{path} failed its content checksum; the artifact is corrupted"
        )
    try:
        bundle = pickle.loads(payload)
    except Exception as exc:  # pickle raises many concrete types
        raise PersistenceError(f"could not unpickle {path}: {exc}") from exc
    if not isinstance(bundle, dict):
        raise PersistenceError(f"{path} does not contain a repro bundle")
    return bundle


def _load_estimator_bundle(path: str | Path) -> dict:
    bundle = _read_checked(path)
    info = bundle.get("info")
    if not isinstance(info, ArtifactInfo):
        raise PersistenceError(f"{path} has no artifact metadata")
    if info.format_version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} was written with format {info.format_version}, "
            f"this library reads format {FORMAT_VERSION}"
        )
    return bundle
