"""Training-throughput baseline: numpy kernels and process fan-out.

The paper's cost analysis (Section 6.2, Figure 4) makes *training* the
dominant cost of learned estimators, and Table 5 multiplies it by the
number of tuning trials.  This experiment measures what the repo's two
levers buy:

* **Kernels** — the opt-in ``dtype=float32`` training path (half the
  bytes through every matmul) and the fused in-place Adam step, against
  the float64 / unfused reference, with the accuracy cost (p95 q-error)
  reported next to the speedup; and
* **Fan-out** — a fixed hyper-parameter search run serially and through
  :class:`~repro.parallel.ParallelExecutor` workers, with a
  bit-identity check on the trial scores.

Results land in ``BENCH_train.json`` at the repo root (the
machine-readable baseline) and ``benchmarks/results/train_throughput.txt``
(the human-readable tables).  The artifact records ``cpu_count`` — the
CPUs actually available to the process — because fan-out speedup is
bounded by it: on a single-core runner the parallel search measures the
fork/IPC overhead, not a speedup, and the numbers are reported honestly
rather than extrapolated.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.metrics import qerrors
from ..obs.clock import perf_counter
from ..estimators.learned import LwNnEstimator, NaruEstimator
from ..nn import Adam
from ..nn.layers import Parameter
from ..parallel import ParallelExecutor, detect_worker_count, worker_seconds
from ..tuning.search import SearchSpace, TuningResult, grid_search
from .context import BenchContext
from .reporting import render_table

#: Workers used for the fan-out comparison (the acceptance criterion's 4).
FANOUT_WORKERS = 4


@dataclass(frozen=True)
class KernelResult:
    """float64-vs-float32 training cost for one estimator."""

    method: str
    epochs: int
    float64_epoch_seconds: float
    float32_epoch_seconds: float
    speedup: float
    float64_p95: float
    float32_p95: float
    float64_model_bytes: int
    float32_model_bytes: int


@dataclass(frozen=True)
class AdamResult:
    """Fused-vs-unfused Adam step microbenchmark."""

    steps: int
    param_elements: int
    fused_seconds: float
    unfused_seconds: float
    speedup: float
    #: fused and unfused parameter trajectories agree to the last bit
    bit_identical: bool


@dataclass(frozen=True)
class FanoutResult:
    """Serial-vs-parallel tuning sweep (same trials, same seeds)."""

    trials: int
    workers: int
    cpu_count: int
    serial_seconds: float
    parallel_seconds: float
    speedup: float
    #: every trial score identical between the serial and parallel runs
    results_equal: bool
    #: cumulative task seconds recorded by the executor during the
    #: parallel run (the numerator of parallel efficiency)
    parallel_worker_seconds: float


# ----------------------------------------------------------------------
# Kernels: float32 training path vs the float64 reference
# ----------------------------------------------------------------------
def _p95(est, queries, cardinalities) -> float:
    return float(np.quantile(qerrors(est.estimate_many(queries), cardinalities), 0.95))


def kernel_results(ctx: BenchContext, dataset: str = "census") -> list[KernelResult]:
    """Train lw-nn and naru in both dtypes; same seeds, same data."""
    table = ctx.table(dataset)
    train = ctx.train_workload(dataset)
    test = ctx.test_workload(dataset)
    queries = list(test.queries)

    def lw(dtype: str) -> LwNnEstimator:
        return LwNnEstimator(
            epochs=ctx.scale.nn_epochs, seed=ctx.seed, dtype=dtype
        )

    def naru(dtype: str) -> NaruEstimator:
        return NaruEstimator(
            epochs=ctx.scale.naru_epochs,
            num_samples=ctx.scale.naru_samples,
            seed=ctx.seed,
            dtype=dtype,
        )

    results = []
    for method, factory, epochs, needs_workload in (
        ("lw-nn", lw, ctx.scale.nn_epochs, True),
        ("naru", naru, ctx.scale.naru_epochs, False),
    ):
        fitted = {}
        for dtype in ("float64", "float32"):
            est = factory(dtype)
            est.fit(table, train if needs_workload else None)
            fitted[dtype] = est
        f64, f32 = fitted["float64"], fitted["float32"]
        results.append(
            KernelResult(
                method=method,
                epochs=epochs,
                float64_epoch_seconds=f64.timing.fit_seconds / epochs,
                float32_epoch_seconds=f32.timing.fit_seconds / epochs,
                speedup=f64.timing.fit_seconds / max(f32.timing.fit_seconds, 1e-12),
                float64_p95=_p95(f64, queries, test.cardinalities),
                float32_p95=_p95(f32, queries, test.cardinalities),
                float64_model_bytes=f64.model_size_bytes(),
                float32_model_bytes=f32.model_size_bytes(),
            )
        )
    return results


# ----------------------------------------------------------------------
# Adam microbenchmark: fused in-place step vs the allocating reference
# ----------------------------------------------------------------------
def adam_microbench(steps: int = 150, shape: tuple[int, int] = (256, 256)) -> AdamResult:
    """Time ``steps`` Adam updates over four ``shape`` parameters.

    Both optimizers start from identical parameters and see identical
    gradients, so the final values must agree bit-for-bit (the fused
    step only reassociates commutative multiplications).  The default
    shape is deliberately past the L2-resident regime: the fused step's
    win is allocator and memory traffic, so below ~64k elements per
    parameter it is a wash and above it is ~1.4-1.6x.
    """
    rng = np.random.default_rng(0)
    init = [rng.standard_normal(shape) for _ in range(4)]
    grads = [rng.standard_normal(shape) for _ in range(4)]

    timings = {}
    finals = {}
    for fused in (False, True):
        # Untimed warmup on throwaway state: both variants pay their
        # first-touch page faults and ufunc-loop setup before the clock.
        warm = [Parameter(v.copy()) for v in init]
        warm_opt = Adam(warm, learning_rate=1e-3, fused=fused)
        for p, g in zip(warm, grads):
            p.grad[...] = g
        for _ in range(10):
            warm_opt.step()

        params = [Parameter(v.copy()) for v in init]
        opt = Adam(params, learning_rate=1e-3, fused=fused)
        for p, g in zip(params, grads):
            p.grad[...] = g
        start = perf_counter()
        for _ in range(steps):
            opt.step()
        timings[fused] = perf_counter() - start
        finals[fused] = [p.value for p in params]

    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(finals[False], finals[True])
    )
    return AdamResult(
        steps=steps,
        param_elements=sum(v.size for v in init),
        fused_seconds=timings[True],
        unfused_seconds=timings[False],
        speedup=timings[False] / max(timings[True], 1e-12),
        bit_identical=bit_identical,
    )


# ----------------------------------------------------------------------
# Fan-out: the same tuning sweep, serial vs parallel
# ----------------------------------------------------------------------
def _fanout_search(
    ctx: BenchContext, dataset: str, parallelism: int
) -> TuningResult:
    table = ctx.table(dataset)
    train = ctx.train_workload(dataset)
    test = ctx.test_workload(dataset)
    space = SearchSpace(
        {
            "hidden": [(16,), (32, 32), (64, 64), (64, 64, 64)],
            "lr": [1e-2, 1e-3],
        }
    )

    def build(config):
        return LwNnEstimator(
            hidden_units=config["hidden"],
            learning_rate=config["lr"],
            epochs=ctx.scale.nn_epochs,
            seed=ctx.seed,
        )

    executor = (
        ParallelExecutor(max_workers=parallelism, base_seed=ctx.seed)
        if parallelism > 1
        else None
    )
    return grid_search(
        build, space, table, train, test, parallelism=parallelism, executor=executor
    )


def fanout_result(
    ctx: BenchContext, dataset: str = "census", workers: int = FANOUT_WORKERS
) -> FanoutResult:
    """Run the 8-trial sweep serially and with ``workers`` processes."""
    # Materialise inputs before timing so both runs start warm.
    ctx.table(dataset)
    ctx.train_workload(dataset)
    ctx.test_workload(dataset)

    start = perf_counter()
    serial = _fanout_search(ctx, dataset, parallelism=1)
    serial_seconds = perf_counter() - start

    busy_before = worker_seconds(mode="fork")
    start = perf_counter()
    parallel = _fanout_search(ctx, dataset, parallelism=workers)
    parallel_seconds = perf_counter() - start
    busy = worker_seconds(mode="fork") - busy_before

    results_equal = (
        [t.score for t in serial.trials] == [t.score for t in parallel.trials]
        and serial.best_config == parallel.best_config
        and serial.best_score == parallel.best_score
    )
    return FanoutResult(
        trials=len(serial.trials),
        workers=workers,
        cpu_count=detect_worker_count(),
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        speedup=serial_seconds / max(parallel_seconds, 1e-12),
        results_equal=results_equal,
        parallel_worker_seconds=busy,
    )


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrainBaseline:
    """Everything the ``train`` experiment measures."""

    dataset: str
    kernels: list[KernelResult]
    adam: AdamResult
    fanout: FanoutResult


def train_baseline(ctx: BenchContext, dataset: str = "census") -> TrainBaseline:
    # The Adam microbench runs first: its unfused reference allocates
    # seven ~0.5MB temporaries per step, and glibc raises its mmap
    # threshold after the training phase frees large blocks, which makes
    # those temporaries artificially cheap.  Measured on a cold
    # allocator the fused step is ~1.6-1.8x; after heavy allocation
    # traffic it converges to ~1x (the remaining win is cache traffic).
    adam = adam_microbench()
    return TrainBaseline(
        dataset=dataset,
        kernels=kernel_results(ctx, dataset),
        adam=adam,
        fanout=fanout_result(ctx, dataset),
    )


def format_train(baseline: TrainBaseline) -> str:
    kernel_table = render_table(
        ["method", "f64 s/epoch", "f32 s/epoch", "speedup", "f64 p95", "f32 p95", "bytes f64/f32"],
        [
            [
                k.method,
                f"{k.float64_epoch_seconds:.3f}",
                f"{k.float32_epoch_seconds:.3f}",
                f"{k.speedup:.2f}x",
                f"{k.float64_p95:.2f}",
                f"{k.float32_p95:.2f}",
                f"{k.float64_model_bytes}/{k.float32_model_bytes}",
            ]
            for k in baseline.kernels
        ],
        title=f"Training kernels on {baseline.dataset}: float32 path vs float64",
    )
    a = baseline.adam
    adam_line = (
        f"Adam step ({a.steps} steps, {a.param_elements} elements): "
        f"fused {a.fused_seconds:.3f}s vs unfused {a.unfused_seconds:.3f}s "
        f"({a.speedup:.2f}x), bit_identical={a.bit_identical}"
    )
    f = baseline.fanout
    fanout_line = (
        f"Tuning fan-out ({f.trials} trials, {f.workers} workers on "
        f"{f.cpu_count} CPUs): serial {f.serial_seconds:.1f}s vs parallel "
        f"{f.parallel_seconds:.1f}s ({f.speedup:.2f}x), "
        f"results_equal={f.results_equal}, "
        f"worker_seconds={f.parallel_worker_seconds:.1f}"
    )
    return "\n".join([kernel_table, "", adam_line, fanout_line])


def write_train_artifacts(
    ctx: BenchContext,
    baseline: TrainBaseline,
    json_path: str | Path = "BENCH_train.json",
    text_path: str | Path = "benchmarks/results/train_throughput.txt",
) -> list[Path]:
    """Write the JSON baseline and the text report; return the paths."""
    json_path, text_path = Path(json_path), Path(text_path)
    payload = {
        "experiment": "train_throughput",
        "dataset": baseline.dataset,
        "scale": ctx.scale.name,
        "seed": ctx.seed,
        "cpu_count": baseline.fanout.cpu_count,
        "kernels": {k.method: asdict(k) for k in baseline.kernels},
        "adam_step": asdict(baseline.adam),
        "fanout": asdict(baseline.fanout),
    }
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    text_path.parent.mkdir(parents=True, exist_ok=True)
    text_path.write_text(format_train(baseline) + "\n")
    return [json_path, text_path]


def train_experiment(
    ctx: BenchContext,
    dataset: str = "census",
    json_path: str | Path = "BENCH_train.json",
    text_path: str | Path = "benchmarks/results/train_throughput.txt",
) -> TrainBaseline:
    """Run the training bench and write both artifacts."""
    baseline = train_baseline(ctx, dataset)
    write_train_artifacts(ctx, baseline, json_path, text_path)
    return baseline
