"""Scalar-vs-batch inference throughput (the repo's first perf baseline).

The paper's Figure 4 argues inference cost decides production readiness;
this experiment quantifies what the vectorized ``estimate_many`` hot
path buys over the paper's one-query-at-a-time loop.  For every
registered estimator it times

* the scalar loop on a measured prefix of the batch (extrapolated to the
  full batch size — running 1,000 scalar Naru estimates would dominate
  the whole bench run), and
* one ``estimate_many`` call over the full batch,

and cross-checks the two on the measured prefix.  Results land in
``BENCH_batch.json`` at the repo root (the machine-readable baseline)
and ``benchmarks/results/batch_throughput.txt`` (the human-readable
table).  The workload is generated from the context seed, so reruns are
deterministic up to wall-clock noise.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.workload import generate_workload
from ..obs.clock import perf_counter
from ..registry import estimator_names
from .context import BenchContext
from .reporting import render_table

#: Queries in the benchmark batch (the acceptance criterion's 1k).
DEFAULT_BATCH_SIZE = 1000

#: At most this many queries are timed through the scalar loop; the
#: scalar cost for the full batch is extrapolated linearly (the loop is
#: embarrassingly linear in the number of queries).
SCALAR_MEASURE_LIMIT = 256


@dataclass(frozen=True)
class BatchThroughput:
    """Scalar-vs-batch timing for one estimator."""

    method: str
    batch_size: int
    #: queries actually timed through the scalar loop
    scalar_measured_queries: int
    #: measured scalar seconds extrapolated to ``batch_size`` queries
    scalar_seconds: float
    batch_seconds: float
    scalar_qps: float
    batch_qps: float
    speedup: float
    #: max relative |scalar - batch| on the measured prefix; None for
    #: stochastic estimators whose RNG cannot be pinned for comparison
    max_rel_diff: float | None


def batch_throughput(
    ctx: BenchContext,
    dataset: str = "census",
    batch_size: int = DEFAULT_BATCH_SIZE,
    methods: list[str] | None = None,
    scalar_limit: int = SCALAR_MEASURE_LIMIT,
) -> list[BatchThroughput]:
    """Time every method's scalar loop against its batched hot path."""
    table = ctx.table(dataset)
    rng = np.random.default_rng(ctx.seed + 77)
    queries = list(generate_workload(table, batch_size, rng).queries)
    n_scalar = min(scalar_limit, batch_size)

    results: list[BatchThroughput] = []
    for method in methods if methods is not None else estimator_names():
        est = ctx.estimator(method, dataset)
        # Pin stochastic inference where the estimator supports it so the
        # scalar/batch cross-check compares like with like.
        pinned = hasattr(est, "inference_seed")
        saved_seed = est.inference_seed if pinned else None
        if pinned:
            est.inference_seed = ctx.seed + 78
        deterministic = pinned or not hasattr(est, "_inference_rng")
        try:
            start = perf_counter()
            scalar_values = np.array(
                [est.estimate(q) for q in queries[:n_scalar]]
            )
            scalar_measured = perf_counter() - start

            start = perf_counter()
            batch_values = est.estimate_many(queries)
            batch_seconds = perf_counter() - start
        finally:
            if pinned:
                est.inference_seed = saved_seed

        max_rel_diff = None
        if deterministic:
            denom = np.maximum(1.0, np.abs(scalar_values))
            max_rel_diff = float(
                np.max(np.abs(scalar_values - batch_values[:n_scalar]) / denom)
            )

        scalar_seconds = scalar_measured * (batch_size / n_scalar)
        results.append(
            BatchThroughput(
                method=method,
                batch_size=batch_size,
                scalar_measured_queries=n_scalar,
                scalar_seconds=scalar_seconds,
                batch_seconds=batch_seconds,
                scalar_qps=batch_size / scalar_seconds if scalar_seconds else 0.0,
                batch_qps=batch_size / batch_seconds if batch_seconds else 0.0,
                speedup=scalar_seconds / batch_seconds if batch_seconds else 0.0,
                max_rel_diff=max_rel_diff,
            )
        )
    return results


def format_batch(results: list[BatchThroughput]) -> str:
    """Human-readable throughput table."""
    header = [
        "method",
        "scalar qps",
        "batch qps",
        "speedup",
        "max rel diff",
    ]
    rows = []
    for r in sorted(results, key=lambda r: -r.speedup):
        rows.append(
            [
                r.method,
                f"{r.scalar_qps:,.0f}",
                f"{r.batch_qps:,.0f}",
                f"{r.speedup:.1f}x",
                "n/a" if r.max_rel_diff is None else f"{r.max_rel_diff:.1e}",
            ]
        )
    title = (
        f"Batch inference throughput ({results[0].batch_size}-query batch, "
        f"scalar loop measured on {results[0].scalar_measured_queries} "
        "queries and extrapolated)"
    )
    return render_table(header, rows, title=title)


def write_batch_artifacts(
    ctx: BenchContext,
    results: list[BatchThroughput],
    dataset: str,
    json_path: str | Path = "BENCH_batch.json",
    text_path: str | Path = "benchmarks/results/batch_throughput.txt",
) -> list[Path]:
    """Write the JSON baseline and the text table; return the paths."""
    json_path, text_path = Path(json_path), Path(text_path)
    payload = {
        "experiment": "batch_throughput",
        "dataset": dataset,
        "scale": ctx.scale.name,
        "seed": ctx.seed,
        "batch_size": results[0].batch_size if results else 0,
        "results": {r.method: asdict(r) for r in results},
    }
    # The fastpath experiment merges its section into the same file;
    # regenerating the batch baseline must not drop it.
    try:
        existing = json.loads(json_path.read_text())
        if "fastpath" in existing:
            payload["fastpath"] = existing["fastpath"]
    except (OSError, ValueError):
        pass
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    text_path.parent.mkdir(parents=True, exist_ok=True)
    text_path.write_text(format_batch(results) + "\n")
    return [json_path, text_path]


def batch_experiment(
    ctx: BenchContext,
    dataset: str = "census",
    json_path: str | Path = "BENCH_batch.json",
    text_path: str | Path = "benchmarks/results/batch_throughput.txt",
) -> str:
    """Run the throughput bench, write both artifacts, return the table."""
    results = batch_throughput(ctx, dataset=dataset)
    paths = write_batch_artifacts(ctx, results, dataset, json_path, text_path)
    lines = [format_batch(results)]
    lines += [f"[baseline written: {p}]" for p in paths]
    return "\n".join(lines)
