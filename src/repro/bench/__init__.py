"""Benchmark harness: one callable per paper table/figure.

Run ``python -m repro.bench <experiment>`` (e.g. ``table4``) or use the
functions directly with a :class:`~repro.bench.context.BenchContext`.
"""

from .context import BenchContext
from .dynamic_exp import figure6, figure7, figure8
from .figure2 import comparison_graph, missing_edge_fraction
from .lifecycle_exp import lifecycle_experiment
from .obs_exp import obs_experiment
from .reporting import format_seconds, render_table
from .robustness import figure9a, figure9b, figure10, figure11
from .rules_exp import table6
from .serving_exp import serving_experiment
from .static import figure3, figure4, table3, table4, table5

__all__ = [
    "BenchContext",
    "comparison_graph",
    "figure10",
    "figure11",
    "figure3",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "format_seconds",
    "lifecycle_experiment",
    "missing_edge_fraction",
    "obs_experiment",
    "render_table",
    "serving_experiment",
    "table3",
    "table4",
    "table5",
    "table6",
]
