"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in cells)
    return "\n".join(parts)


def format_seconds(seconds: float) -> str:
    """Human-scale duration: ms under a second, minutes over 120 s."""
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.1f}s"
    return f"{seconds / 60:.1f}min"
