"""Shared benchmark context: datasets, workloads and fitted estimators.

Training a learned model is by far the dominant cost of the benchmark,
so the context caches fitted estimators and labelled workloads keyed by
(dataset, method); every experiment that needs "the models of Table 4"
reuses them, mirroring the paper's setup where the same trained models
feed Sections 4-5.

With ``jobs > 1`` the context also owns a
:class:`~repro.parallel.ParallelExecutor`, and :meth:`prefit` fans the
independent (method, dataset) training cells across worker processes.
Each cell trains exactly as a lazy :meth:`estimator` call would (same
seeds, same inputs), so a prefit context is bit-identical to a
serially-filled one.
"""

from __future__ import annotations

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.table import Table
from ..core.workload import Workload, generate_workload
from ..datasets import realworld
from ..parallel import ParallelExecutor
from ..registry import make_estimator
from ..scale import Scale


def _fit_cell_task(item: tuple, _rng) -> CardinalityEstimator:
    """Executor task: fit one (method, dataset) cell.  The context (and
    its already-materialised tables/workloads) arrives through
    fork-inherited memory; only the fitted estimator crosses the pipe."""
    ctx, method, dataset = item
    return ctx.estimator(method, dataset)


class BenchContext:
    """Lazily materialised datasets, workloads and fitted models."""

    def __init__(
        self, scale: Scale | None = None, seed: int = 42, jobs: int = 1
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.scale = scale or Scale.from_environment()
        self.seed = seed
        self.jobs = jobs
        self._executor: ParallelExecutor | None = None
        self._tables: dict[str, Table] = {}
        self._train: dict[str, Workload] = {}
        self._test: dict[str, Workload] = {}
        self._fitted: dict[tuple[str, str], CardinalityEstimator] = {}

    def executor(self) -> ParallelExecutor | None:
        """The context's executor, or ``None`` when running with 1 job."""
        if self.jobs == 1:
            return None
        if self._executor is None:
            self._executor = ParallelExecutor(
                max_workers=self.jobs, base_seed=self.seed
            )
        return self._executor

    # ------------------------------------------------------------------
    def table(self, dataset: str) -> Table:
        if dataset not in self._tables:
            rows = int(realworld.DEFAULT_ROWS[dataset] * self.scale.row_fraction)
            self._tables[dataset] = realworld.load(dataset, num_rows=max(rows, 500))
        return self._tables[dataset]

    def train_workload(self, dataset: str) -> Workload:
        if dataset not in self._train:
            rng = np.random.default_rng(self.seed)
            self._train[dataset] = generate_workload(
                self.table(dataset), self.scale.train_queries, rng
            )
        return self._train[dataset]

    def test_workload(self, dataset: str) -> Workload:
        if dataset not in self._test:
            rng = np.random.default_rng(self.seed + 1)
            self._test[dataset] = generate_workload(
                self.table(dataset), self.scale.test_queries, rng
            )
        return self._test[dataset]

    # ------------------------------------------------------------------
    def estimator(self, method: str, dataset: str) -> CardinalityEstimator:
        """The fitted model of ``method`` on ``dataset`` (cached)."""
        key = (method, dataset)
        if key not in self._fitted:
            est = make_estimator(method, self.scale)
            workload = self.train_workload(dataset) if est.requires_workload else None
            est.fit(self.table(dataset), workload)
            self._fitted[key] = est
        return self._fitted[key]

    def fresh_estimator(self, method: str, dataset: str) -> CardinalityEstimator:
        """A newly fitted, uncached model (for experiments that mutate it)."""
        est = make_estimator(method, self.scale)
        workload = self.train_workload(dataset) if est.requires_workload else None
        return est.fit(self.table(dataset), workload)

    def prefit(self, pairs: list[tuple[str, str]]) -> None:
        """Fit every not-yet-cached (method, dataset) cell, fanning across
        worker processes when ``jobs > 1``.

        Cells are independent training runs, so this is the benchmark's
        widest fan-out surface.  Results land in the same cache that
        :meth:`estimator` fills, in the same order, trained with the
        same seeds — experiments on a prefit context see bit-identical
        models.
        """
        missing = [p for p in pairs if p not in self._fitted]
        if not missing:
            return
        executor = self.executor()
        if executor is None:
            for method, dataset in missing:
                self.estimator(method, dataset)
            return
        # Materialise shared inputs in the parent first so every fork
        # inherits the same tables/workloads instead of rebuilding them.
        for method, dataset in missing:
            self.table(dataset)
            self.train_workload(dataset)
        fitted = executor.map_tasks(
            _fit_cell_task, [(self, m, d) for m, d in missing]
        )
        for (method, dataset), est in zip(missing, fitted):
            self._fitted[(method, dataset)] = est
