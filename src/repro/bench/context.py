"""Shared benchmark context: datasets, workloads and fitted estimators.

Training a learned model is by far the dominant cost of the benchmark,
so the context caches fitted estimators and labelled workloads keyed by
(dataset, method); every experiment that needs "the models of Table 4"
reuses them, mirroring the paper's setup where the same trained models
feed Sections 4-5.
"""

from __future__ import annotations

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.table import Table
from ..core.workload import Workload, generate_workload
from ..datasets import realworld
from ..registry import make_estimator
from ..scale import Scale


class BenchContext:
    """Lazily materialised datasets, workloads and fitted models."""

    def __init__(self, scale: Scale | None = None, seed: int = 42) -> None:
        self.scale = scale or Scale.from_environment()
        self.seed = seed
        self._tables: dict[str, Table] = {}
        self._train: dict[str, Workload] = {}
        self._test: dict[str, Workload] = {}
        self._fitted: dict[tuple[str, str], CardinalityEstimator] = {}

    # ------------------------------------------------------------------
    def table(self, dataset: str) -> Table:
        if dataset not in self._tables:
            rows = int(realworld.DEFAULT_ROWS[dataset] * self.scale.row_fraction)
            self._tables[dataset] = realworld.load(dataset, num_rows=max(rows, 500))
        return self._tables[dataset]

    def train_workload(self, dataset: str) -> Workload:
        if dataset not in self._train:
            rng = np.random.default_rng(self.seed)
            self._train[dataset] = generate_workload(
                self.table(dataset), self.scale.train_queries, rng
            )
        return self._train[dataset]

    def test_workload(self, dataset: str) -> Workload:
        if dataset not in self._test:
            rng = np.random.default_rng(self.seed + 1)
            self._test[dataset] = generate_workload(
                self.table(dataset), self.scale.test_queries, rng
            )
        return self._test[dataset]

    # ------------------------------------------------------------------
    def estimator(self, method: str, dataset: str) -> CardinalityEstimator:
        """The fitted model of ``method`` on ``dataset`` (cached)."""
        key = (method, dataset)
        if key not in self._fitted:
            est = make_estimator(method, self.scale)
            workload = self.train_workload(dataset) if est.requires_workload else None
            est.fit(self.table(dataset), workload)
            self._fitted[key] = est
        return self._fitted[key]

    def fresh_estimator(self, method: str, dataset: str) -> CardinalityEstimator:
        """A newly fitted, uncached model (for experiments that mutate it)."""
        est = make_estimator(method, self.scale)
        workload = self.train_workload(dataset) if est.requires_workload else None
        return est.fit(self.table(dataset), workload)
