"""Million-query sharded-serving experiment: the chaos matrix.

Replays a large query stream through a :class:`~repro.shard.ShardRouter`
(forked worker pools, admission control, supervised restarts) under a
matrix of worker-level fault scenarios — crashes mid-batch, hangs, slow
workers, queue floods, shard-local model corruption, failed rolling
swaps, and a restart budget driven to exhaustion.  The acceptance bar
for every scenario is the same: **availability 1.0** — every replayed
query gets a finite, in-bounds estimate from *some* tier (worker,
in-process fallback chain, or the shed-to-heuristic path).

The no-fault scenario doubles as the determinism check: the sharded
fork-parallel answers must be bit-identical to a single-shard in-process
replay of the same stream.

Every scenario also runs with cross-process telemetry on and is held to
two observability invariants: the merged per-worker serve counters
(``repro_worker_queries_total``, shipped over the reply pipes and folded
with ``{shard, worker_pid}`` labels) must sum exactly to the parent's
count of accepted worker answers — crashes, hangs and re-dispatches
included — and at least one merged worker span must re-parent under a
dispatching ``serve.batch`` span.  The ``slo-breach`` scenario forces a
per-tenant latency SLO through a full breach → recovery cycle: slowed
workers burn the error budget until the mid-replay swap to a clean
model lets every tenant recover.

Results land in ``BENCH_serve.json`` at the repo root (machine-readable
baseline validated by ``benchmarks/test_scale_serving.py``) and
``benchmarks/results/scale_serving.txt`` (the human-readable table).
The artifact records ``cpu_count`` so throughput/speedup floors only
apply on hardware where fork parallelism can physically win.  On
KeyboardInterrupt/SIGTERM the partial scenario results are flushed
(``"partial": true``) before the interrupt propagates.
"""

from __future__ import annotations

import copy
import json
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Query
from ..estimators.traditional import SamplingEstimator
from ..faults import (
    NaNFault,
    SlowWorkerFault,
    WorkerCrashFault,
    WorkerHangFault,
    queue_flood,
)
from ..lifecycle.gate import PromotionGate
from ..lifecycle.retrain import RetryPolicy
from ..obs import (
    LATENCY,
    WORKER_QUERIES,
    EventLog,
    MetricsRegistry,
    SloObjective,
    SloRegistry,
    SpanCollector,
    get_collector,
    install_collector,
    percentile_ms,
    uninstall_collector,
)
from ..obs.clock import perf_counter
from ..parallel import detect_worker_count
from ..rules.enforce import is_sane
from ..serve import HeuristicConstantEstimator
from ..shard import AdmissionConfig, ShardRequest, ShardRouter, WorkerSupervisor
from .context import BenchContext
from .reporting import render_table

#: queries replayed per scale preset (the paper-scale serving load)
REPLAY_TARGETS = {"ci": 4_000, "default": 100_000, "paper": 250_000}

#: dispatch batch size: one admission window / worker round-trip
DEFAULT_CHUNK = 2048

#: the slo-breach scenario's per-tenant objective: any per-request
#: latency above 0.3ms burns error budget.  Slowed workers sit ~2x above
#: the threshold (0.15s per 256-query half-chunk ≈ 0.6ms/request) and a
#: healthy pool sits well under it, so the breach and the recovery are
#: both decisive.  ``breach_burn_rate=20`` (≥20% bad in *both* windows)
#: keeps a single noisy chunk from paging; recovery needs a clean fast
#: window.
SLO_BREACH_OBJECTIVE = SloObjective(
    LATENCY,
    threshold=0.3,
    target=0.99,
    fast_window=64,
    slow_window=256,
    breach_burn_rate=20.0,
    recover_burn_rate=1.0,
    min_samples=64,
)


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the chaos matrix."""

    name: str
    #: wraps the fitted primary for the *worker* processes only (the
    #: parent's fallback chain always keeps a clean copy)
    worker_wrap: Callable[[CardinalityEstimator, int], CardinalityEstimator] | None = None
    admission: AdmissionConfig | None = None
    policy: RetryPolicy | None = None
    request_timeout_seconds: float = 5.0
    #: per-request deadline metadata (drives deadline-aware shedding)
    deadline_ms: float | None = None
    #: >1 tiles the stream into a deterministic burst (queue flood)
    flood_multiplier: int = 1
    #: exercise rolling swaps (gate rejection, probe rollback, promote)
    swap: bool = False
    #: dispatch batch size override (None = DEFAULT_CHUNK)
    chunk: int | None = None
    #: arm the per-tenant latency SLO and swap to a clean model
    #: mid-replay, forcing a breach -> recovery cycle
    slo: bool = False


def default_chaos_matrix(seed: int) -> list[ChaosScenario]:
    """The no-fault baseline plus the eight chaos scenarios."""
    generous = RetryPolicy(
        max_attempts=64, backoff_base_seconds=0.01, backoff_cap_seconds=0.1
    )
    return [
        ChaosScenario("no-fault"),
        ChaosScenario(
            "worker-crash",
            worker_wrap=lambda est, s: WorkerCrashFault(
                est, probability=5e-5, seed=s
            ),
            policy=generous,
        ),
        ChaosScenario(
            "worker-hang",
            worker_wrap=lambda est, s: WorkerHangFault(
                est, hang_seconds=1.0, probability=2e-5, seed=s
            ),
            policy=generous,
            request_timeout_seconds=0.15,
        ),
        ChaosScenario(
            "slow-worker",
            worker_wrap=lambda est, s: SlowWorkerFault(
                est, delay_seconds=0.05, probability=1.0, seed=s
            ),
            deadline_ms=5.0,
        ),
        ChaosScenario(
            "queue-flood",
            admission=AdmissionConfig(queue_capacity=256, tenant_quota=96),
            flood_multiplier=4,
        ),
        ChaosScenario(
            "model-corruption",
            worker_wrap=lambda est, s: NaNFault(est, probability=0.02, seed=s),
        ),
        ChaosScenario("rolling-swap-failure", swap=True),
        ChaosScenario(
            "slo-breach",
            worker_wrap=lambda est, s: SlowWorkerFault(
                est, delay_seconds=0.15, probability=1.0, seed=s
            ),
            chunk=512,
            slo=True,
        ),
        ChaosScenario(
            "budget-exhaustion",
            worker_wrap=lambda est, s: WorkerCrashFault(
                est, probability=1.0, seed=s
            ),
            policy=RetryPolicy(
                max_attempts=1,
                backoff_base_seconds=0.001,
                backoff_cap_seconds=0.002,
            ),
            chunk=512,
        ),
    ]


@dataclass(frozen=True)
class ScaleScenarioResult:
    """Outcome of replaying the stream under one chaos scenario."""

    scenario: str
    queries: int
    #: fraction of requests answered with a finite in-bounds estimate
    availability: float
    throughput_qps: float
    p50_ms: float
    p99_ms: float
    worker_served: int
    fallback_served: int
    shed: int
    shed_reasons: dict[str, int]
    redispatches: int
    worker_restarts: int
    exhausted_shards: int
    fallback_mode_shards: int
    #: rolling-swap outcomes in attempt order (swap scenarios only)
    swap_outcomes: tuple[str, ...]
    #: fork answers == single-shard in-process answers (no-fault only)
    bit_identical: bool | None
    #: single-shard in-process replay throughput (no-fault only)
    serial_qps: float | None
    #: merged per-worker serve counters sum exactly to the parent's
    #: accepted worker answers (crashes and re-dispatches included)
    telemetry_consistent: bool = True
    #: merged spans carrying a ``worker_pid`` attribute (fork mode)
    worker_spans: int = 0
    #: >=1 worker span re-parented under a ``serve.batch`` span; None
    #: when no worker spans were merged (inline mode / total crash)
    worker_spans_reparented: bool | None = None
    #: slo.breach / slo.recovered transitions in emission order
    slo_transitions: tuple[str, ...] = ()


def _replay_stream(ctx: BenchContext, target: int, multiplier: int) -> list[Query]:
    """A deterministic ``target``-query stream tiled from the workload."""
    base = list(ctx.test_workload("census").queries)
    tile = max(1, math.ceil(target / (len(base) * multiplier)))
    stream = queue_flood(base, multiplier=tile * multiplier, seed=ctx.seed)
    return stream[:target]


def _requests(
    queries: Sequence[Query], deadline_ms: float | None
) -> list[ShardRequest]:
    return [
        ShardRequest(
            query=q,
            tenant=f"t{i % 8}",
            priority=i % 3,
            deadline_ms=deadline_ms,
        )
        for i, q in enumerate(queries)
    ]


def _attempt_swaps(
    router: ShardRouter,
    primary: CardinalityEstimator,
    probe_queries: list[Query],
    gate: PromotionGate,
) -> list[str]:
    """Mid-replay swap storm: rejected, rolled back, then promoted."""
    outcomes = []
    corrupt = NaNFault(primary, probability=1.0)
    corrupt.fit(primary.table)
    # A corrupt candidate never clears the gate: no shard is touched.
    report = router.rolling_swap(corrupt, gate=gate)
    outcomes.append("promoted" if report.promoted else "rejected")
    # The same candidate slipped past an absent gate: the post-swap
    # probe catches it on the first shard and rolls the fleet back.
    report = router.rolling_swap(corrupt, probe_queries=probe_queries)
    outcomes.append("rolled_back" if report.rolled_back else "promoted")
    # A genuinely better candidate (bigger sample) promotes cleanly,
    # one shard at a time, bumping every shard's cache generation.
    better = SamplingEstimator(fraction=0.03, seed=7)
    better.fit(primary.table)
    report = router.rolling_swap(better, gate=gate, probe_queries=probe_queries)
    outcomes.append("promoted" if report.promoted else "rejected")
    return outcomes


def run_chaos_scenario(
    ctx: BenchContext,
    scenario: ChaosScenario,
    *,
    replay: int | None = None,
    num_shards: int = 2,
    workers_per_shard: int = 2,
    mode: str = "auto",
    transport: str = "auto",
) -> ScaleScenarioResult:
    """Replay the stream through a sharded router under one scenario."""
    table = ctx.table("census")
    primary = ctx.fresh_estimator("sampling", "census")
    heuristic = HeuristicConstantEstimator()
    heuristic.fit(table)
    seed = ctx.seed + 23
    worker_estimator = (
        scenario.worker_wrap(primary, seed) if scenario.worker_wrap else None
    )
    if worker_estimator is not None:
        worker_estimator.fit(table)

    target = replay if replay is not None else REPLAY_TARGETS[ctx.scale.name]
    queries = _replay_stream(ctx, target, scenario.flood_multiplier)
    requests = _requests(queries, scenario.deadline_ms)
    chunk = scenario.chunk or DEFAULT_CHUNK
    gate = PromotionGate(queries[:64], regression_tolerance=3.0, seed=ctx.seed)

    # Scenario-local telemetry: a fresh registry/event log per scenario
    # makes the counter-sum invariant exact, and the span collector is
    # reused when the CLI already installed one (--trace-out) so merged
    # worker spans land in the exported trace.
    registry = MetricsRegistry()
    events = EventLog()
    slos: SloRegistry | None = None
    if scenario.slo:
        slos = SloRegistry(registry=registry, events=events)
        slos.set_objective(SLO_BREACH_OBJECTIVE)
    collector = get_collector()
    owns_collector = collector is None
    if owns_collector:
        collector = install_collector(SpanCollector(capacity=65_536))

    router = ShardRouter(
        primary,
        [heuristic],
        num_shards=num_shards,
        workers_per_shard=workers_per_shard,
        worker_estimator=worker_estimator,
        admission=scenario.admission,
        policy=scenario.policy,
        mode=mode,
        transport=transport,
        request_timeout_seconds=scenario.request_timeout_seconds,
        seed=ctx.seed,
        events=events,
        registry=registry,
        slos=slos,
    )
    swap_outcomes: list[str] = []
    estimates = np.empty(len(requests), dtype=np.float64)
    latencies: list[float] = []
    swap_at = (len(requests) // (2 * chunk)) * chunk  # mid-replay boundary
    try:
        with router:
            start = perf_counter()
            for lo in range(0, len(requests), chunk):
                if scenario.swap and lo == swap_at:
                    swap_outcomes = _attempt_swaps(
                        router, primary, queries[:8], gate
                    )
                if scenario.slo and lo == swap_at:
                    # Recovery: swap every shard to the clean model, so
                    # the breached tenants' fast windows drain back
                    # under the burn-rate floor.
                    for shard in router.shards.values():
                        shard.swap_model(primary)
                batch = requests[lo : lo + chunk]
                batch_start = perf_counter()
                served = router.serve_batch(batch)
                per_request = (perf_counter() - batch_start) / len(batch)
                latencies.extend([per_request] * len(batch))
                for offset, answer in enumerate(served):
                    estimates[lo + offset] = answer.estimate
                if (lo // chunk) % 8 == 7:
                    router.check_health()
            elapsed = perf_counter() - start
            totals = router.totals()
            exhausted = sum(
                1 for s in router.shards.values() if s.supervisor.exhausted
            )
            fallback_mode = sum(
                1 for s in router.shards.values() if s.fallback_mode
            )
            restarts = sum(
                s.supervisor.total_restarts for s in router.shards.values()
            )

        # Telemetry invariant: the per-worker serve counters that crossed
        # the pipe (plus the inline-mode direct writes) must sum exactly
        # to the queries the parent accepted from workers — under
        # crashes, hangs, re-dispatches and swaps alike.
        merged_worker_queries = sum(
            series["value"]
            for series in registry.counter(WORKER_QUERIES).snapshot()["series"]
        )
        telemetry_consistent = (
            int(merged_worker_queries) == totals.worker_answered
        )
        spans = collector.spans()
        worker_spans = [s for s in spans if "worker_pid" in s.attrs]
        batch_span_ids = {
            s.span_id for s in spans if s.name == "serve.batch"
        }
        worker_spans_reparented = (
            any(s.parent_id in batch_span_ids for s in worker_spans)
            if worker_spans
            else None
        )
        slo_transitions = tuple(
            e.kind.removeprefix("slo.")
            for e in events.events()
            if e.kind in ("slo.breach", "slo.recovered")
        )

        bit_identical: bool | None = None
        serial_qps: float | None = None
        if scenario.name == "no-fault":
            # Determinism reference: one in-process shard, same stream.
            reference = ShardRouter(
                primary,
                [heuristic],
                num_shards=1,
                mode="inline",
                registry=MetricsRegistry(),
            )
            with reference:
                serial_start = perf_counter()
                ref_estimates = np.array(
                    [
                        s.estimate
                        for lo in range(0, len(requests), chunk)
                        for s in reference.serve_batch(requests[lo : lo + chunk])
                    ]
                )
                serial_qps = len(requests) / (perf_counter() - serial_start)
            bit_identical = bool(np.array_equal(estimates, ref_estimates))
    finally:
        if owns_collector:
            uninstall_collector()

    availability = float(
        np.mean([is_sane(v, table.num_rows) for v in estimates])
    )
    return ScaleScenarioResult(
        scenario=scenario.name,
        queries=len(requests),
        availability=availability,
        throughput_qps=len(requests) / elapsed,
        p50_ms=percentile_ms(latencies, 50.0),
        p99_ms=percentile_ms(latencies, 99.0),
        worker_served=totals.worker_served,
        fallback_served=totals.fallback_served,
        shed=totals.shed,
        shed_reasons=dict(sorted(totals.shed_reasons.items())),
        redispatches=totals.redispatches,
        worker_restarts=restarts,
        exhausted_shards=exhausted,
        fallback_mode_shards=fallback_mode,
        swap_outcomes=tuple(swap_outcomes),
        bit_identical=bit_identical,
        serial_qps=serial_qps,
        telemetry_consistent=telemetry_consistent,
        worker_spans=len(worker_spans),
        worker_spans_reparented=worker_spans_reparented,
        slo_transitions=slo_transitions,
    )


def _transport_microbench(
    ctx: BenchContext,
    *,
    batch: int = 1000,
    rounds: int = 30,
) -> dict:
    """Round-trip latency of pipe vs shm dispatch, fp32 vs int8 workers.

    One worker, one batch of ``batch`` census queries, ``rounds``
    dispatches per (transport, precision) cell — small enough to ride
    along with the chaos matrix, long enough that the p50 is a
    steady-state number rather than a fork warm-up artifact.  The int8
    worker is the fp32 teacher packed in place, so the bit-identity
    columns compare like against like.
    """
    queries = _replay_stream(ctx, batch, 1)
    teacher = ctx.fresh_estimator("lw-nn", "census")
    quantized = copy.deepcopy(teacher)
    quantized.quantize_int8()
    models = {"fp32": teacher, "int8": quantized}

    out: dict = {"batch": batch, "rounds": rounds}
    answers: dict[tuple[str, str], np.ndarray] = {}
    modes: set[str] = set()
    for model_name, model in models.items():
        for transport in ("pipe", "shm"):
            supervisor = WorkerSupervisor(
                f"bench-{transport}-{model_name}",
                model,
                1,
                transport=transport,
                registry=MetricsRegistry(),
                telemetry=False,
            )
            modes.add(supervisor.mode)
            supervisor.start()
            try:
                latencies: list[float] = []
                values = None
                start = perf_counter()
                for _ in range(rounds):
                    t0 = perf_counter()
                    dispatch = supervisor.dispatch(queries)
                    latencies.append(perf_counter() - t0)
                    values = dispatch.values
                elapsed = perf_counter() - start
            finally:
                supervisor.drain()
            if values is None:
                raise RuntimeError(
                    f"transport bench dispatch failed "
                    f"({transport}, {model_name})"
                )
            answers[(model_name, transport)] = np.asarray(values)
            out.setdefault(transport, {})[model_name] = {
                "p50_us": float(np.percentile(latencies, 50.0) * 1e6),
                "p99_us": float(np.percentile(latencies, 99.0) * 1e6),
                "qps": rounds * batch / elapsed,
            }
    # ``mode`` records whether dispatch actually crossed a process: on a
    # fork-less platform both cells run inline and the speedup column is
    # meaningless (the floors in benchmarks/ gate on cpu_count anyway).
    out["mode"] = sorted(modes)[0] if len(modes) == 1 else "mixed"
    out["bit_identical"] = {
        name: bool(
            np.array_equal(answers[(name, "pipe")], answers[(name, "shm")])
        )
        for name in models
    }
    out["speedup_p50_int8"] = (
        out["pipe"]["int8"]["p50_us"] / out["shm"]["int8"]["p50_us"]
    )
    return out


def transport_experiment(
    ctx: BenchContext,
    *,
    replay: int | None = None,
    num_shards: int = 2,
    workers_per_shard: int = 2,
    batch: int = 1000,
    rounds: int = 30,
) -> dict:
    """Pipe-vs-shm comparison: no-fault chaos replay plus micro round trips.

    The no-fault scenario runs once per transport; each run's
    ``bit_identical`` flag compares against the transport-independent
    single-shard inline reference, so two passing runs prove the two
    transports agree bit-for-bit with each other as well.  The payload
    lands under ``BENCH_serve.json``'s ``"transport"`` key.
    """
    no_fault = next(
        s for s in default_chaos_matrix(ctx.seed) if s.name == "no-fault"
    )
    chaos: dict = {}
    for transport in ("pipe", "shm"):
        result = run_chaos_scenario(
            ctx,
            no_fault,
            replay=replay,
            num_shards=num_shards,
            workers_per_shard=workers_per_shard,
            transport=transport,
        )
        chaos[transport] = {
            "availability": result.availability,
            "throughput_qps": result.throughput_qps,
            "p50_ms": result.p50_ms,
            "p99_ms": result.p99_ms,
            "bit_identical_to_inline": result.bit_identical,
        }
    payload = _transport_microbench(ctx, batch=batch, rounds=rounds)
    payload["cpu_count"] = detect_worker_count()
    payload["chaos"] = chaos
    return payload


def format_transport(payload: dict) -> str:
    rows = []
    for transport in ("pipe", "shm"):
        for precision in ("fp32", "int8"):
            cell = payload[transport][precision]
            rows.append(
                [
                    transport,
                    precision,
                    f"{cell['p50_us']:,.0f}",
                    f"{cell['p99_us']:,.0f}",
                    f"{cell['qps']:,.0f}",
                    "yes" if payload["bit_identical"][precision] else "NO",
                ]
            )
    title = (
        f"Transport comparison (batch={payload['batch']}, "
        f"rounds={payload['rounds']}, mode={payload['mode']}, "
        f"int8 shm speedup p50 {payload['speedup_p50_int8']:.2f}x)"
    )
    return render_table(
        ["transport", "weights", "p50(us)", "p99(us)", "qps", "pipe==shm"],
        rows,
        title=title,
    )


def write_serve_artifacts(
    ctx: BenchContext,
    results: list[ScaleScenarioResult],
    *,
    num_shards: int,
    workers_per_shard: int,
    transport_payload: dict | None = None,
    partial: bool = False,
    json_path: str | Path = "BENCH_serve.json",
    text_path: str | Path = "benchmarks/results/scale_serving.txt",
) -> list[Path]:
    """Write the machine-readable baseline and the formatted table.

    Sections owned by other experiments sharing the file (the guard
    experiment's ``guard`` key) are preserved verbatim — the same merge
    discipline ``fastpath`` uses in ``BENCH_batch.json``.
    """
    json_path, text_path = Path(json_path), Path(text_path)
    no_fault = next((r for r in results if r.scenario == "no-fault"), None)
    payload = {
        "experiment": "scale_serving",
        "scale": ctx.scale.name,
        "seed": ctx.seed,
        "cpu_count": detect_worker_count(),
        "num_shards": num_shards,
        "workers_per_shard": workers_per_shard,
        "chunk": DEFAULT_CHUNK,
        "partial": partial,
        "bit_identical": None if no_fault is None else no_fault.bit_identical,
        "serial_qps": None if no_fault is None else no_fault.serial_qps,
        "parallel_qps": None if no_fault is None else no_fault.throughput_qps,
        "speedup": (
            None
            if no_fault is None or not no_fault.serial_qps
            else no_fault.throughput_qps / no_fault.serial_qps
        ),
        "scenarios": {
            r.scenario: {
                "queries": r.queries,
                "availability": r.availability,
                "throughput_qps": r.throughput_qps,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "worker_served": r.worker_served,
                "fallback_served": r.fallback_served,
                "shed": r.shed,
                "shed_reasons": r.shed_reasons,
                "redispatches": r.redispatches,
                "worker_restarts": r.worker_restarts,
                "exhausted_shards": r.exhausted_shards,
                "fallback_mode_shards": r.fallback_mode_shards,
                "swap_outcomes": list(r.swap_outcomes),
                "telemetry_consistent": r.telemetry_consistent,
                "worker_spans": r.worker_spans,
                "worker_spans_reparented": r.worker_spans_reparented,
                "slo_transitions": list(r.slo_transitions),
            }
            for r in results
        },
    }
    if transport_payload is not None:
        payload["transport"] = transport_payload
    try:
        merged = json.loads(json_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged.update(payload)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    text_path.parent.mkdir(parents=True, exist_ok=True)
    text = format_scale(results)
    if transport_payload is not None:
        text += "\n\n" + format_transport(transport_payload)
    text_path.write_text(text + "\n")
    return [json_path, text_path]


def scale_experiment(
    ctx: BenchContext,
    *,
    replay: int | None = None,
    num_shards: int = 2,
    workers_per_shard: int = 2,
    mode: str = "auto",
    transport: str = "auto",
    include_transport: bool = False,
    scenarios: list[ChaosScenario] | None = None,
    json_path: str | Path = "BENCH_serve.json",
    text_path: str | Path = "benchmarks/results/scale_serving.txt",
) -> list[ScaleScenarioResult]:
    """Run the chaos matrix and write both artifacts.

    ``include_transport`` additionally runs :func:`transport_experiment`
    (pipe vs shm, fp32 vs int8) and merges its payload under the
    artifact's ``"transport"`` key.  An interrupt (Ctrl-C / SIGTERM via
    the CLI's handler) flushes the scenarios finished so far — marked
    ``"partial": true`` — before the KeyboardInterrupt propagates to the
    caller.
    """
    matrix = scenarios if scenarios is not None else default_chaos_matrix(ctx.seed)
    results: list[ScaleScenarioResult] = []
    try:
        for scenario in matrix:
            results.append(
                run_chaos_scenario(
                    ctx,
                    scenario,
                    replay=replay,
                    num_shards=num_shards,
                    workers_per_shard=workers_per_shard,
                    mode=mode,
                    transport=transport,
                )
            )
        transport_payload = (
            transport_experiment(
                ctx,
                replay=replay,
                num_shards=num_shards,
                workers_per_shard=workers_per_shard,
            )
            if include_transport
            else None
        )
    except KeyboardInterrupt:
        write_serve_artifacts(
            ctx,
            results,
            num_shards=num_shards,
            workers_per_shard=workers_per_shard,
            partial=True,
            json_path=json_path,
            text_path=text_path,
        )
        raise
    write_serve_artifacts(
        ctx,
        results,
        num_shards=num_shards,
        workers_per_shard=workers_per_shard,
        transport_payload=transport_payload,
        json_path=json_path,
        text_path=text_path,
    )
    return results


def format_scale(results: list[ScaleScenarioResult]) -> str:
    rows = []
    for r in results:
        extras = []
        if r.swap_outcomes:
            extras.append("swaps=" + ",".join(r.swap_outcomes))
        if r.bit_identical is not None:
            extras.append(f"bit-identical={'yes' if r.bit_identical else 'NO'}")
        if r.exhausted_shards:
            extras.append(f"exhausted={r.exhausted_shards}")
        if not r.telemetry_consistent:
            extras.append("telemetry=MISMATCH")
        if r.worker_spans_reparented is not None:
            extras.append(
                "spans=" + ("linked" if r.worker_spans_reparented else "ORPHANED")
            )
        if r.slo_transitions:
            breaches = sum(1 for t in r.slo_transitions if t == "breach")
            recoveries = sum(1 for t in r.slo_transitions if t == "recovered")
            extras.append(f"slo=breach:{breaches},recovered:{recoveries}")
        rows.append(
            [
                r.scenario,
                f"{r.queries:,}",
                f"{100.0 * r.availability:.1f}%",
                f"{r.throughput_qps:,.0f}",
                f"{r.p50_ms:.2f}",
                f"{r.p99_ms:.2f}",
                f"{r.worker_served:,}",
                f"{r.fallback_served:,}",
                f"{r.shed:,}",
                str(r.redispatches),
                str(r.worker_restarts),
                " ".join(extras) or "-",
            ]
        )
    return render_table(
        [
            "scenario",
            "queries",
            "avail",
            "qps",
            "p50(ms)",
            "p99(ms)",
            "worker",
            "fallback",
            "shed",
            "redisp",
            "restarts",
            "notes",
        ],
        rows,
        title=(
            "Sharded serving chaos matrix: consistent-hash shards over "
            "supervised forked workers (avail = finite in-bounds answers; "
            "every scenario must hold 100%)"
        ),
    )
