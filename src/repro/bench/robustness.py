"""When do learned estimators go wrong? (paper Section 6, Figures 9-11.)

Sweeps over the synthetic dataset's three factors — correlation, skew
and domain size — training the *same* model configuration on each
variant and reporting the distribution of the top-1% q-errors, plus the
Naru instability experiment of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import qerrors, top_fraction
from ..core.query import Predicate, Query
from ..core.table import Table
from ..core.workload import WorkloadConfig, generate_workload
from ..datasets.synthetic import (
    correlation_sweep,
    domain_sweep,
    generate_synthetic,
    skew_sweep,
)
from ..estimators.learned import (
    DeepDbEstimator,
    LwNnEstimator,
    LwXgbEstimator,
    MscnEstimator,
    NaruEstimator,
)
from .context import BenchContext
from .reporting import render_table

#: Section 6 fixes one configuration per method (paper Section 6.1):
#: DeepDB at the recommended defaults, LW-XGB at 128 trees, and one
#: consistently good architecture for each neural method.
def _section6_estimators(ctx: BenchContext):
    scale = ctx.scale
    return {
        "mscn": lambda: MscnEstimator(hidden_units=32, epochs=scale.nn_epochs),
        "lw-xgb": lambda: LwXgbEstimator(num_trees=128),
        "lw-nn": lambda: LwNnEstimator(hidden_units=(32, 32), epochs=scale.nn_epochs),
        "naru": lambda: NaruEstimator(
            hidden_units=48,
            hidden_layers=2,
            epochs=scale.naru_epochs,
            num_samples=scale.naru_samples,
        ),
        "deepdb": lambda: DeepDbEstimator(
            rdc_threshold=0.3, min_instance_slice_fraction=0.01
        ),
    }


#: Section 6 workloads draw every query center out-of-domain to probe
#: the whole query space.
_OOD_CONFIG = WorkloadConfig(ood_probability=1.0)


@dataclass(frozen=True)
class SweepCell:
    """Top-1% q-error distribution for one method at one factor level."""

    method: str
    level: float
    top_min: float
    top_median: float
    top_max: float


def _run_sweep(
    tables: dict[float, Table] | dict[int, Table], ctx: BenchContext
) -> list[SweepCell]:
    estimators = _section6_estimators(ctx)
    cells: list[SweepCell] = []
    for level, table in tables.items():
        rng = np.random.default_rng(ctx.seed + 23)
        train = generate_workload(table, ctx.scale.train_queries, rng, _OOD_CONFIG)
        test = generate_workload(table, ctx.scale.test_queries, rng, _OOD_CONFIG)
        queries = list(test.queries)
        for method, factory in estimators.items():
            est = factory()
            est.fit(table, train if est.requires_workload else None)
            errors = qerrors(est.estimate_many(queries), test.cardinalities)
            top = top_fraction(errors, 0.01)
            cells.append(
                SweepCell(
                    method=method,
                    level=float(level),
                    top_min=float(top.min()),
                    top_median=float(np.median(top)),
                    top_max=float(top.max()),
                )
            )
    return cells


# ----------------------------------------------------------------------
# Figures 9a, 9b, 10
# ----------------------------------------------------------------------
def figure9a(ctx: BenchContext) -> list[SweepCell]:
    """Top-1% q-error vs correlation (s = 1.0, d = 1000)."""
    rng = np.random.default_rng(ctx.seed + 29)
    tables = correlation_sweep(ctx.scale.synthetic_rows, rng)
    return _run_sweep(tables, ctx)


def figure9b(ctx: BenchContext) -> list[SweepCell]:
    """Top-1% q-error vs skew (c = 1.0, d = 1000)."""
    rng = np.random.default_rng(ctx.seed + 31)
    tables = skew_sweep(ctx.scale.synthetic_rows, rng)
    return _run_sweep(tables, ctx)


def figure10(ctx: BenchContext) -> list[SweepCell]:
    """Top-1% q-error vs domain size (s = 1.0, c = 1.0)."""
    rng = np.random.default_rng(ctx.seed + 37)
    levels = (10, 100, 1000, 10_000)
    tables = domain_sweep(ctx.scale.synthetic_rows, rng, levels=levels)
    return _run_sweep(tables, ctx)


def format_sweep(cells: list[SweepCell], factor: str, title: str) -> str:
    methods = list(dict.fromkeys(c.method for c in cells))
    levels = sorted(dict.fromkeys(c.level for c in cells))
    rows = []
    for method in methods:
        row: list[object] = [method]
        for level in levels:
            cell = next(
                c for c in cells if c.method == method and c.level == level
            )
            row.append(f"{cell.top_median:.0f}/{cell.top_max:.0f}")
        rows.append(row)
    headers = ["Method"] + [f"{factor}={lv:g}" for lv in levels]
    return render_table(
        headers, rows, title=f"{title} (top-1% q-error, median/max)"
    )


# ----------------------------------------------------------------------
# Figure 11: Naru's inference instability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StabilityResult:
    """Repeated Naru estimates of one query (Figure 11)."""

    actual: float
    estimates: np.ndarray

    @property
    def spread(self) -> float:
        return float(self.estimates.max() - self.estimates.min())

    @property
    def relative_spread(self) -> float:
        return self.spread / max(self.actual, 1.0)


def figure11(
    ctx: BenchContext, repeats: int | None = None
) -> StabilityResult:
    """Run Naru on one adversarial query many times (s = 0, c = 1, d = 1000).

    The query covers a wide range on the first column and a narrow one on
    the second; under functional dependency the sampled conditionals have
    huge variance, so progressive sampling spreads widely.
    """
    repeats = repeats or max(200, ctx.scale.test_queries)
    rng = np.random.default_rng(ctx.seed + 41)
    table = generate_synthetic(
        ctx.scale.synthetic_rows, skew=0.0, correlation=1.0, domain_size=1000, rng=rng
    )
    # The instability needs a *well-trained* model: an undertrained one
    # has smeared conditionals and spuriously low sampling variance, so
    # this experiment trains past the default epoch budget and keeps the
    # sample width moderate (variance grows as width shrinks).
    est = NaruEstimator(
        hidden_units=48,
        hidden_layers=2,
        epochs=max(12, 2 * ctx.scale.naru_epochs),
        num_samples=min(64, ctx.scale.naru_samples),
    )
    est.fit(table)
    # Wide range on column 0, a handful of values on column 1.
    query = Query(
        (
            Predicate(0, 50.0, 900.0),
            Predicate(1, 100.0, 102.0),
        )
    )
    actual = float(table.cardinality(query))
    estimates = np.array([est.estimate(query) for _ in range(repeats)])
    return StabilityResult(actual=actual, estimates=estimates)


def format_figure11(result: StabilityResult) -> str:
    est = result.estimates
    rows = [
        ["actual", f"{result.actual:.0f}"],
        ["runs", len(est)],
        ["min", f"{est.min():.0f}"],
        ["median", f"{np.median(est):.0f}"],
        ["max", f"{est.max():.0f}"],
        ["spread (max-min)", f"{result.spread:.0f}"],
        ["spread / actual", f"{result.relative_spread:.2f}"],
    ]
    return render_table(
        ["Quantity", "Value"],
        rows,
        title="Figure 11: Naru repeated-estimate spread on one query",
    )
