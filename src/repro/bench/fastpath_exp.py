"""Fast-path inference bench: int8, distilled, and semantic-cache tiers.

PR 3's batch baseline (``BENCH_batch.json``) made ``estimate_many`` the
hot path; this experiment measures what :mod:`repro.fastpath` buys on
top of it.  For each nn teacher it builds four serving tiers —

* **fp32** — the registry teacher as fitted (the incumbent),
* **int8** — a deep copy of the same weights, post-training quantized,
* **student** — a confidence-gated GBDT distilled from the teacher,
* **int8+cache** — the int8 model behind a
  :class:`~repro.fastpath.SemanticEstimateCache`-backed service,

and replays a dashboard-shaped workload against each: a cold phase of
unique queries followed by a warm phase of exact repeats and tightened
(subset) drill-downs, so the semantic cache answers both hit kinds.
Every tier is timed per query through its serving interface (p50/p99),
and its accuracy is scored as p95 q-error against true cardinalities.

Results merge into ``BENCH_batch.json`` under a ``fastpath`` key —
the existing ``batch`` results are preserved verbatim — plus the
human-readable ``benchmarks/results/fastpath.txt``.  Acceptance: the
int8+cache tier's p50 beats the committed batch baseline's per-query
cost by >= 5x on naru and mscn, at p95 q-error within 1.5x of the fp32
teacher.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.query import Predicate, Query
from ..core.workload import generate_workload
from ..fastpath import DistilledStudent, SemanticEstimateCache
from ..obs.clock import perf_counter
from ..serve import EstimatorService
from .context import BenchContext
from .reporting import render_table

#: teachers worth fast-pathing: the nn models with real inference cost
DEFAULT_METHODS = ("naru", "mscn")

#: unique queries in the cold phase
DEFAULT_UNIQUE = 120

#: warm-phase serves (exact repeats + subset drill-downs)
DEFAULT_WARM = 480

#: acceptance bars (see module docstring)
ACCEPTANCE_SPEEDUP = 5.0
ACCEPTANCE_QERR_RATIO = 1.5


@dataclass(frozen=True)
class FastPathTier:
    """One tier's latency/accuracy/size profile over the replay."""

    method: str
    tier: str
    p50_us: float
    p99_us: float
    qps: float
    #: p95 q-error against true cardinalities over the replay
    p95_qerr: float
    model_size_bytes: int
    #: exact + semantic hit rate; None for uncached tiers
    cache_hit_rate: float | None


@dataclass(frozen=True)
class FastPathResult:
    """All tiers for one teacher, plus the acceptance roll-ups."""

    method: str
    replay_queries: int
    tiers: dict[str, FastPathTier]
    #: committed batch baseline's per-query cost (us), for the speedup
    baseline_batch_us: float | None
    #: baseline_batch_us / int8+cache p50
    speedup_p50_vs_batch: float | None
    #: int8 p95 q-error / fp32 p95 q-error
    qerr_ratio_int8_vs_fp32: float
    #: int8+cache p95 q-error / fp32 p95 q-error
    qerr_ratio_cached_vs_fp32: float


def _tighten(rng: np.random.Generator, query: Query) -> Query:
    """A strict-subset drill-down of ``query`` (dashboard refinement)."""
    preds = []
    for p in query.predicates:
        lo = p.lo if p.lo is not None else -1e9
        hi = p.hi if p.hi is not None else 1e9
        if hi <= lo:
            preds.append(p)
            continue
        new_lo, new_hi = np.sort(rng.uniform(lo, hi, size=2)).tolist()
        preds.append(Predicate(p.column, new_lo, new_hi))
    return Query(tuple(preds))


def replay_queries(
    table,
    rng: np.random.Generator,
    n_unique: int = DEFAULT_UNIQUE,
    n_warm: int = DEFAULT_WARM,
    subset_fraction: float = 0.15,
) -> list[Query]:
    """Cold uniques, then shuffled exact repeats and subset probes."""
    unique = list(generate_workload(table, n_unique, rng).queries)
    warm: list[Query] = []
    for _ in range(n_warm):
        base = unique[int(rng.integers(len(unique)))]
        if rng.random() < subset_fraction:
            warm.append(_tighten(rng, base))
        else:
            warm.append(base)
    return unique + warm


def _qerr_p95(estimates: np.ndarray, actuals: np.ndarray) -> float:
    est = np.maximum(np.asarray(estimates, dtype=np.float64), 1.0)
    act = np.maximum(np.asarray(actuals, dtype=np.float64), 1.0)
    return float(np.percentile(np.maximum(est / act, act / est), 95.0))


def _time_tier(serve, queries) -> tuple[np.ndarray, np.ndarray]:
    """Per-query latencies (seconds) and served estimates."""
    latencies = np.empty(len(queries))
    estimates = np.empty(len(queries))
    for i, query in enumerate(queries):
        start = perf_counter()
        estimates[i] = serve(query)
        latencies[i] = perf_counter() - start
    return latencies, estimates


def _tier_profile(
    method: str,
    tier: str,
    serve,
    queries,
    actuals: np.ndarray,
    size_bytes: int,
    cache=None,
) -> FastPathTier:
    latencies, estimates = _time_tier(serve, queries)
    total = float(latencies.sum())
    return FastPathTier(
        method=method,
        tier=tier,
        p50_us=float(np.percentile(latencies, 50.0) * 1e6),
        p99_us=float(np.percentile(latencies, 99.0) * 1e6),
        qps=len(queries) / total if total else 0.0,
        p95_qerr=_qerr_p95(estimates, actuals),
        model_size_bytes=size_bytes,
        cache_hit_rate=None if cache is None else cache.hit_rate,
    )


def _baseline_batch_us(method: str, json_path: Path) -> float | None:
    """Per-query cost (us) of the committed PR 3 batch baseline."""
    try:
        payload = json.loads(json_path.read_text())
        result = payload["results"][method]
        return 1e6 * result["batch_seconds"] / result["batch_size"]
    except (OSError, KeyError, ValueError):
        return None


def fastpath_tiers(
    ctx: BenchContext,
    dataset: str = "census",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    n_unique: int = DEFAULT_UNIQUE,
    n_warm: int = DEFAULT_WARM,
    baseline_json: str | Path = "BENCH_batch.json",
) -> list[FastPathResult]:
    """Profile all four tiers per teacher over the replay workload."""
    table = ctx.table(dataset)
    rng = np.random.default_rng(ctx.seed + 177)
    queries = replay_queries(table, rng, n_unique, n_warm)
    actuals = table.cardinalities(queries)

    results: list[FastPathResult] = []
    for method in methods:
        teacher = ctx.estimator(method, dataset)
        pinned = hasattr(teacher, "inference_seed")
        saved_seed = teacher.inference_seed if pinned else None
        if pinned:
            teacher.inference_seed = ctx.seed + 178
        try:
            quantized = copy.deepcopy(teacher)
            quantized.quantize_int8()

            student = DistilledStudent(
                teacher,
                num_queries=min(2000, max(64, ctx.scale.train_queries)),
                seed=ctx.seed + 179,
            )
            student.fit(table)

            # A materialized row sample makes the semantic interpolation
            # empirical (skew-aware) instead of uniform-width.
            sample_rows = table.data[
                rng.choice(
                    table.num_rows,
                    size=min(512, table.num_rows),
                    replace=False,
                )
            ]
            cache = SemanticEstimateCache(
                capacity=4 * n_unique, sample=sample_rows
            )
            service = EstimatorService(
                [quantized], cache=cache, deadline_ms=None
            )

            tiers = {
                "fp32": _tier_profile(
                    method, "fp32", teacher.estimate, queries, actuals,
                    teacher.model_size_bytes(),
                ),
                "int8": _tier_profile(
                    method, "int8", quantized.estimate, queries, actuals,
                    quantized.model_size_bytes(),
                ),
                "student": _tier_profile(
                    method, "student", student.estimate, queries, actuals,
                    student.model_size_bytes(),
                ),
                "int8+cache": _tier_profile(
                    method, "int8+cache",
                    lambda q: service.serve(q).estimate, queries, actuals,
                    quantized.model_size_bytes(), cache=cache,
                ),
            }
        finally:
            if pinned:
                teacher.inference_seed = saved_seed

        baseline_us = _baseline_batch_us(method, Path(baseline_json))
        cached = tiers["int8+cache"]
        fp32 = tiers["fp32"]
        results.append(
            FastPathResult(
                method=method,
                replay_queries=len(queries),
                tiers=tiers,
                baseline_batch_us=baseline_us,
                speedup_p50_vs_batch=(
                    None if baseline_us is None or cached.p50_us <= 0.0
                    else baseline_us / cached.p50_us
                ),
                qerr_ratio_int8_vs_fp32=tiers["int8"].p95_qerr / fp32.p95_qerr,
                qerr_ratio_cached_vs_fp32=cached.p95_qerr / fp32.p95_qerr,
            )
        )
    return results


def format_fastpath(results: list[FastPathResult]) -> str:
    """Human-readable tier table plus the acceptance roll-up lines."""
    header = [
        "method",
        "tier",
        "p50",
        "p99",
        "qps",
        "p95 q-err",
        "size",
        "hit rate",
    ]
    rows = []
    for result in results:
        for tier in result.tiers.values():
            rows.append(
                [
                    tier.method,
                    tier.tier,
                    f"{tier.p50_us:,.0f}us",
                    f"{tier.p99_us:,.0f}us",
                    f"{tier.qps:,.0f}",
                    f"{tier.p95_qerr:.2f}",
                    f"{tier.model_size_bytes / 1024:.0f}KiB",
                    "n/a" if tier.cache_hit_rate is None
                    else f"{tier.cache_hit_rate:.0%}",
                ]
            )
    title = (
        f"Fast-path inference tiers ({results[0].replay_queries}-query "
        "replay: cold uniques, then repeats + subset drill-downs)"
    )
    lines = [render_table(header, rows, title=title)]
    for result in results:
        speedup = (
            "n/a (no batch baseline)"
            if result.speedup_p50_vs_batch is None
            else f"{result.speedup_p50_vs_batch:.1f}x"
        )
        lines.append(
            f"{result.method}: int8+cache p50 speedup vs batch baseline "
            f"{speedup} (floor {ACCEPTANCE_SPEEDUP:.0f}x); p95 q-error "
            f"ratio int8 {result.qerr_ratio_int8_vs_fp32:.2f}, cached "
            f"{result.qerr_ratio_cached_vs_fp32:.2f} "
            f"(ceiling {ACCEPTANCE_QERR_RATIO:.1f})"
        )
    return "\n".join(lines)


def write_fastpath_artifacts(
    ctx: BenchContext,
    results: list[FastPathResult],
    dataset: str,
    json_path: str | Path = "BENCH_batch.json",
    text_path: str | Path = "benchmarks/results/fastpath.txt",
) -> list[Path]:
    """Merge a ``fastpath`` section into the baseline JSON; write text.

    The batch experiment's payload is preserved verbatim — only the
    ``fastpath`` key is replaced.
    """
    json_path, text_path = Path(json_path), Path(text_path)
    try:
        payload = json.loads(json_path.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["fastpath"] = {
        "dataset": dataset,
        "scale": ctx.scale.name,
        "seed": ctx.seed,
        "replay_queries": results[0].replay_queries if results else 0,
        "acceptance": {
            "speedup_floor": ACCEPTANCE_SPEEDUP,
            "qerr_ratio_ceiling": ACCEPTANCE_QERR_RATIO,
        },
        "results": {r.method: asdict(r) for r in results},
    }
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    text_path.parent.mkdir(parents=True, exist_ok=True)
    text_path.write_text(format_fastpath(results) + "\n")
    return [json_path, text_path]


def fastpath_experiment(
    ctx: BenchContext,
    dataset: str = "census",
    json_path: str | Path = "BENCH_batch.json",
    text_path: str | Path = "benchmarks/results/fastpath.txt",
) -> str:
    """Run the fast-path bench, write both artifacts, return the table."""
    results = fastpath_tiers(ctx, dataset=dataset, baseline_json=json_path)
    paths = write_fastpath_artifacts(ctx, results, dataset, json_path, text_path)
    lines = [format_fastpath(results)]
    lines += [f"[baseline written: {p}]" for p in paths]
    return "\n".join(lines)
