"""CLI: regenerate any table or figure of the paper's evaluation.

Usage::

    python -m repro.bench table4 [--scale ci|default|paper] [--seed N]
    python -m repro.bench all --scale ci
"""

from __future__ import annotations

import argparse
import sys
import time

from ..scale import Scale
from . import figure2, robustness, rules_exp
from .context import BenchContext
from .serving_exp import format_serving, serving_experiment
from .dynamic_exp import (
    figure6,
    figure7,
    figure8,
    format_figure6,
    format_figure7,
    format_figure8,
)
from .robustness import figure9a, figure9b, figure10, figure11
from .rules_exp import format_table6, table6
from .static import (
    figure3,
    figure4,
    format_figure3,
    format_figure4,
    format_table3,
    format_table4,
    format_table5,
    table3,
    table4,
    table5,
)


def _experiments(ctx: BenchContext) -> dict[str, callable]:
    return {
        "table3": lambda: format_table3(table3(ctx)),
        "figure2": lambda: figure2.format_figure2(),
        "figure3": lambda: format_figure3(figure3(ctx)),
        "table4": lambda: format_table4(table4(ctx)),
        "figure4": lambda: format_figure4(figure4(ctx)),
        "table5": lambda: format_table5(table5(ctx)),
        "figure6": lambda: format_figure6(figure6(ctx)),
        "figure7": lambda: format_figure7(figure7(ctx)),
        "figure8": lambda: format_figure8(figure8(ctx)),
        "figure9a": lambda: robustness.format_sweep(
            figure9a(ctx), "c", "Figure 9a: correlation sweep"
        ),
        "figure9b": lambda: robustness.format_sweep(
            figure9b(ctx), "s", "Figure 9b: skew sweep"
        ),
        "figure10": lambda: robustness.format_sweep(
            figure10(ctx), "d", "Figure 10: domain-size sweep"
        ),
        "figure11": lambda: robustness.format_figure11(figure11(ctx)),
        "table6": lambda: format_table6(table6(ctx)),
        "serving": lambda: format_serving(serving_experiment(ctx)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (table3, table4, figure6, ... or 'all')",
    )
    parser.add_argument("--scale", default=None, help="ci | default | paper")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    scale = Scale.from_name(args.scale) if args.scale else Scale.from_environment()
    ctx = BenchContext(scale, seed=args.seed)
    experiments = _experiments(ctx)

    names = list(experiments) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in experiments]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {sorted(experiments)}"
        )
    for name in names:
        start = time.perf_counter()
        print(experiments[name]())
        print(f"[{name} took {time.perf_counter() - start:.1f}s at scale={scale.name}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
