"""CLI: regenerate any table or figure of the paper's evaluation.

Usage::

    python -m repro.bench table4 [--scale ci|default|paper] [--seed N]
    python -m repro.bench all --scale ci --jobs 4
    python -m repro.bench serving --trace-out          # + telemetry dump
    python -m repro.bench obs --scale ci               # telemetry IS the output
    python -m repro.bench train                        # parallel/kernel baseline

``--jobs N`` fans independent work across N worker processes via
:mod:`repro.parallel`: with several experiments requested, whole
experiments run concurrently (each in its own process with a fresh
context); a single experiment fans its per-(method, dataset) training
cells instead.  Results are bit-identical to ``--jobs 1``.

``--trace-out [DIR]`` installs a span collector and training monitor for
the run and afterwards writes ``<experiment>_spans.jsonl``,
``<experiment>_metrics.prom`` / ``.json`` and ``<experiment>_events.jsonl``
into DIR (default ``benchmarks/results/``).  Tracing forces experiments
to run sequentially in-process (child telemetry dies with the fork), but
per-cell fan-out still applies.
"""

from __future__ import annotations

import argparse
import signal
import sys
from collections.abc import Callable
from pathlib import Path

from .. import obs
from ..obs.clock import perf_counter
from ..parallel import ParallelExecutor, worker_seconds
from ..scale import Scale
from . import figure2, robustness, rules_exp  # noqa: F401  (rules_exp via table6)
from .batch_exp import batch_experiment
from .fastpath_exp import fastpath_experiment
from .guard_exp import guard_experiment
from .context import BenchContext
from .train_exp import format_train, train_experiment
from .lifecycle_exp import format_lifecycle, lifecycle_experiment
from .obs_exp import format_obs, obs_experiment
from .obs_report import format_obs_report, obs_report_experiment
from .scale_exp import format_scale, scale_experiment
from .serving_exp import format_serving, serving_experiment
from .dynamic_exp import (
    figure6,
    figure7,
    figure8,
    format_figure6,
    format_figure7,
    format_figure8,
)
from .robustness import figure9a, figure9b, figure10, figure11
from .rules_exp import format_table6, table6
from .static import (
    figure3,
    figure4,
    format_figure3,
    format_figure4,
    format_table3,
    format_table4,
    format_table5,
    table3,
    table4,
    table5,
)

#: experiment id -> runner taking the shared context, returning report text.
#: Module-level so ``--help`` can list every id without building a context.
EXPERIMENTS: dict[str, Callable[[BenchContext], str]] = {
    "table3": lambda ctx: format_table3(table3(ctx)),
    "figure2": lambda ctx: figure2.format_figure2(),
    "figure3": lambda ctx: format_figure3(figure3(ctx)),
    "table4": lambda ctx: format_table4(table4(ctx)),
    "figure4": lambda ctx: format_figure4(figure4(ctx)),
    "table5": lambda ctx: format_table5(table5(ctx)),
    "figure6": lambda ctx: format_figure6(figure6(ctx)),
    "figure7": lambda ctx: format_figure7(figure7(ctx)),
    "figure8": lambda ctx: format_figure8(figure8(ctx)),
    "figure9a": lambda ctx: robustness.format_sweep(
        figure9a(ctx), "c", "Figure 9a: correlation sweep"
    ),
    "figure9b": lambda ctx: robustness.format_sweep(
        figure9b(ctx), "s", "Figure 9b: skew sweep"
    ),
    "figure10": lambda ctx: robustness.format_sweep(
        figure10(ctx), "d", "Figure 10: domain-size sweep"
    ),
    "figure11": lambda ctx: robustness.format_figure11(figure11(ctx)),
    "table6": lambda ctx: format_table6(table6(ctx)),
    "serving": lambda ctx: format_serving(serving_experiment(ctx)),
    "lifecycle": lambda ctx: format_lifecycle(lifecycle_experiment(ctx)),
    "obs": lambda ctx: format_obs(obs_experiment(ctx)),
    "obs-report": lambda ctx: format_obs_report(obs_report_experiment(ctx)),
    "batch": lambda ctx: batch_experiment(ctx),
    "fastpath": lambda ctx: fastpath_experiment(ctx),
    "guard": lambda ctx: guard_experiment(ctx),
    "train": lambda ctx: format_train(train_experiment(ctx)),
    "scale": lambda ctx: format_scale(scale_experiment(ctx)),
}


def _experiment_task(item: tuple, _rng) -> tuple[str, str, float]:
    """Executor task: run one whole experiment in a worker process.

    Each worker builds a *fresh* context (jobs=1 — no nested pools) so
    experiments don't share cached models; only the report string and
    timing cross the pipe."""
    name, scale, seed = item
    ctx = BenchContext(scale, seed=seed)
    start = perf_counter()
    report = EXPERIMENTS[name](ctx)
    return name, report, perf_counter() - start


def experiment_names() -> list[str]:
    return list(EXPERIMENTS)


def _dump_trace(out_dir: Path, stem: str, collector: obs.SpanCollector) -> list[str]:
    """Write spans/metrics/events collected during the run; return paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    spans_path = out_dir / f"{stem}_spans.jsonl"
    metrics_text_path = out_dir / f"{stem}_metrics.prom"
    metrics_json_path = out_dir / f"{stem}_metrics.json"
    events_path = out_dir / f"{stem}_events.jsonl"
    collector.to_jsonl(spans_path)
    registry = obs.get_registry()
    exposition = registry.render_text()
    obs.parse_exposition(exposition)  # lint before publishing
    metrics_text_path.write_text(exposition)
    registry.to_json(metrics_json_path)
    obs.get_events().to_jsonl(events_path)
    return [str(p) for p in (spans_path, metrics_text_path, metrics_json_path, events_path)]


def _sigterm_to_interrupt(signum, frame):
    raise KeyboardInterrupt


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        help=f"experiment id(s) or 'all'; one of: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--scale", default=None, help="ci | default | paper")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--transport",
        action="store_true",
        help="scale experiment only: also run the pipe-vs-shm transport "
        "comparison (fp32 and int8 workers) and merge it into "
        "BENCH_serve.json under the 'transport' key",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent training/experiment cells "
        "(default 1 = serial; results are identical at any N)",
    )
    parser.add_argument(
        "--trace-out",
        nargs="?",
        const="benchmarks/results",
        default=None,
        metavar="DIR",
        help="collect spans/metrics/events during the run and dump "
        "<experiment>_{spans.jsonl,metrics.prom,metrics.json,events.jsonl} "
        "into DIR (default: benchmarks/results)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    scale = Scale.from_name(args.scale) if args.scale else Scale.from_environment()
    ctx = BenchContext(scale, seed=args.seed, jobs=args.jobs)

    names = list(EXPERIMENTS) if "all" in args.experiment else list(args.experiment)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {sorted(EXPERIMENTS)}"
        )
    if args.transport:
        # In-process override only: the --jobs fan-out rebuilds the
        # experiment table from the module, so the transport comparison
        # runs with the default serial path.
        EXPERIMENTS["scale"] = lambda ctx: format_scale(
            scale_experiment(ctx, include_transport=True)
        )

    collector = None
    if args.trace_out is not None:
        obs.get_registry().reset()
        obs.get_events().clear()
        collector = obs.install_collector()
        obs.install_monitor()

    # A supervisor's SIGTERM gets the same graceful path as Ctrl-C:
    # experiments unwind via KeyboardInterrupt (flushing their partial
    # artifacts, e.g. the scale experiment's BENCH_serve.json), the
    # trace dump below still runs, and the exit code is non-zero.
    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)

    wall_start = perf_counter()
    completed: list[str] = []
    interrupted = False
    try:
        if args.jobs > 1 and len(names) > 1 and collector is None:
            # Whole experiments fan across workers; reports print in
            # request order regardless of completion order.
            executor = ParallelExecutor(max_workers=args.jobs, base_seed=args.seed)
            outcomes = executor.map_tasks(
                _experiment_task, [(n, scale, args.seed) for n in names]
            )
            for name, report, seconds in outcomes:
                print(report)
                print(f"[{name} took {seconds:.1f}s at scale={scale.name}]")
                print()
                completed.append(name)
        else:
            for name in names:
                start = perf_counter()
                print(EXPERIMENTS[name](ctx))
                print(
                    f"[{name} took {perf_counter() - start:.1f}s at scale={scale.name}]"
                )
                print()
                completed.append(name)
        if args.jobs > 1:
            wall = perf_counter() - wall_start
            busy = worker_seconds()
            print(
                f"[parallel: {args.jobs} jobs, {busy:.1f}s of worker time in "
                f"{wall:.1f}s wall ({busy / max(wall, 1e-9):.2f}x concurrency)]"
            )
    except KeyboardInterrupt:
        interrupted = True
        pending = [n for n in names if n not in completed]
        print(
            f"\n[interrupted during {pending[0] if pending else '?'}; "
            f"completed: {', '.join(completed) or 'none'}]",
            file=sys.stderr,
        )
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        try:
            if collector is not None and names != ["obs"]:
                # The obs experiment writes its own (richer) obs_*
                # artifacts.  On interrupt the spans/metrics/events
                # gathered so far are still flushed.
                stem = "all" if "all" in args.experiment else "_".join(names)
                for path in _dump_trace(Path(args.trace_out), stem, collector):
                    print(f"[trace written: {path}]")
        finally:
            if collector is not None:
                obs.uninstall_collector()
                obs.uninstall_monitor()
    return 130 if interrupted else 0


if __name__ == "__main__":
    sys.exit(main())
