"""Static-environment experiments (paper Section 4 + setup tables).

* :func:`table3` — dataset characteristics.
* :func:`figure3` — selectivity distribution of the generated workloads.
* :func:`table4` — q-error comparison, 13 estimators x 4 datasets.
* :func:`figure4` — training and inference cost, CPU and (derived) GPU.
* :func:`table5` — hyper-parameter sensitivity of the neural methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import QErrorSummary, format_qerror, qerrors, summarize, win_lose
from ..datasets import realworld
from ..dynamic.device import GPU
from ..estimators.learned import LwNnEstimator, MscnEstimator, NaruEstimator
from ..registry import LEARNED_NAMES, TRADITIONAL_NAMES
from .context import BenchContext
from .reporting import format_seconds, render_table

DATASETS = realworld.dataset_names()


# ----------------------------------------------------------------------
# Table 3: dataset characteristics
# ----------------------------------------------------------------------
def table3(ctx: BenchContext) -> list[dict[str, object]]:
    rows = []
    for name in DATASETS:
        table = ctx.table(name)
        rows.append(
            {
                "dataset": name,
                "size_mb": table.size_bytes() / 1e6,
                "rows": table.num_rows,
                "cols": table.num_columns,
                "cat": table.num_categorical,
                "log10_domain": table.log10_domain_product(),
            }
        )
    return rows


def format_table3(rows: list[dict[str, object]]) -> str:
    return render_table(
        ["Dataset", "Size(MB)", "Rows", "Cols/Cat", "Domain"],
        [
            [
                r["dataset"],
                f"{r['size_mb']:.1f}",
                r["rows"],
                f"{r['cols']}/{r['cat']}",
                f"10^{r['log10_domain']:.0f}",
            ]
            for r in rows
        ],
        title="Table 3: dataset characteristics (simulated)",
    )


# ----------------------------------------------------------------------
# Figure 3: workload selectivity distribution
# ----------------------------------------------------------------------
def figure3(ctx: BenchContext) -> dict[str, np.ndarray]:
    """Histogram of log10 selectivity per dataset.

    Returns, per dataset, the fraction of queries in buckets
    ``[0] + (10^-k, 10^-k+1] ...`` — the series behind Figure 3.
    """
    out: dict[str, np.ndarray] = {}
    for name in DATASETS:
        table = ctx.table(name)
        workload = ctx.test_workload(name)
        sels = workload.selectivities(table)
        edges = [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0 + 1e-12]
        counts, _ = np.histogram(sels, bins=edges)
        zero = float(np.mean(sels == 0.0))
        fracs = counts / len(sels)
        fracs[0] -= zero  # first bucket excludes exact zeros
        out[name] = np.concatenate([[zero], fracs])
    return out


def format_figure3(series: dict[str, np.ndarray]) -> str:
    headers = ["Dataset", "=0", "<1e-6", "1e-6..", "1e-5..", "1e-4..", "1e-3..", "1e-2..", ">1e-1"]
    rows = [
        [name] + [f"{v:.2f}" for v in fracs] for name, fracs in series.items()
    ]
    return render_table(
        headers, rows, title="Figure 3: workload selectivity distribution"
    )


# ----------------------------------------------------------------------
# Table 4: static accuracy
# ----------------------------------------------------------------------
def table4(
    ctx: BenchContext, datasets: list[str] | None = None, methods: list[str] | None = None
) -> dict[str, dict[str, QErrorSummary]]:
    """Q-error summaries per dataset per method."""
    datasets = datasets or DATASETS
    methods = methods or (TRADITIONAL_NAMES + LEARNED_NAMES)
    # Every (method, dataset) cell trains independently; with ctx.jobs > 1
    # they fan across worker processes before the (cheap) evaluation loop.
    ctx.prefit([(m, d) for d in datasets for m in methods])
    out: dict[str, dict[str, QErrorSummary]] = {}
    for dataset in datasets:
        test = ctx.test_workload(dataset)
        queries = list(test.queries)
        out[dataset] = {}
        for method in methods:
            est = ctx.estimator(method, dataset)
            estimates = est.estimate_many(queries)
            out[dataset][method] = summarize(estimates, test.cardinalities)
    return out


def format_table4(results: dict[str, dict[str, QErrorSummary]]) -> str:
    blocks = []
    for dataset, by_method in results.items():
        rows = []
        for method in TRADITIONAL_NAMES + LEARNED_NAMES:
            if method not in by_method:
                continue
            s = by_method[method]
            group = "T" if method in TRADITIONAL_NAMES else "L"
            rows.append(
                [method, group] + [format_qerror(v) for v in s.as_tuple()]
            )
        traditional = {m: s for m, s in by_method.items() if m in TRADITIONAL_NAMES}
        learned = {m: s for m, s in by_method.items() if m in LEARNED_NAMES}
        if traditional and learned:
            verdict = win_lose(traditional, learned)
            rows.append(
                ["L v.s. T", ""]
                + [verdict[k] for k in ("p50", "p95", "p99", "max")]
            )
        blocks.append(
            render_table(
                ["Estimator", "", "50th", "95th", "99th", "Max"],
                rows,
                title=f"Table 4 [{dataset}]: estimation errors",
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 4: training / inference cost
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostRow:
    dataset: str
    method: str
    train_seconds_cpu: float
    train_seconds_gpu: float
    inference_ms_cpu: float
    inference_ms_gpu: float


def figure4(
    ctx: BenchContext, datasets: list[str] | None = None, methods: list[str] | None = None
) -> list[CostRow]:
    """Training time and mean per-query inference latency.

    CPU numbers are measured wall-clock; GPU numbers derive from the
    paper's measured speedup factors (see :mod:`repro.dynamic.device`).
    """
    datasets = datasets or DATASETS
    methods = methods or (["postgres", "mysql", "dbms-a"] + LEARNED_NAMES)
    ctx.prefit([(m, d) for d in datasets for m in methods])
    rows = []
    for dataset in datasets:
        test = ctx.test_workload(dataset)
        queries = list(test.queries)
        for method in methods:
            est = ctx.estimator(method, dataset)
            # Time inference on a fresh counter to avoid double counting.
            before_t = est.timing.total_inference_seconds
            before_n = est.timing.inference_count
            est.estimate_many(queries)
            elapsed = est.timing.total_inference_seconds - before_t
            per_query_ms = 1000.0 * elapsed / (est.timing.inference_count - before_n)
            speed = GPU.speedup(method)
            rows.append(
                CostRow(
                    dataset=dataset,
                    method=method,
                    train_seconds_cpu=est.timing.fit_seconds,
                    train_seconds_gpu=est.timing.fit_seconds / speed,
                    inference_ms_cpu=per_query_ms,
                    inference_ms_gpu=per_query_ms / speed,
                )
            )
    return rows


def format_figure4(rows: list[CostRow]) -> str:
    return render_table(
        ["Dataset", "Method", "Train(CPU)", "Train(GPU*)", "Infer(CPU)", "Infer(GPU*)"],
        [
            [
                r.dataset,
                r.method,
                format_seconds(r.train_seconds_cpu),
                format_seconds(r.train_seconds_gpu),
                f"{r.inference_ms_cpu:.2f}ms",
                f"{r.inference_ms_gpu:.2f}ms",
            ]
            for r in rows
        ],
        title="Figure 4: training and inference cost (GPU* derived, see DESIGN.md)",
    )


# ----------------------------------------------------------------------
# Table 5: hyper-parameter sensitivity
# ----------------------------------------------------------------------
def _architecture_grid(scale_epochs: int, naru_epochs: int, samples: int):
    """Candidate architectures per neural method (paper: four each)."""
    return {
        "naru": [
            lambda: NaruEstimator(hidden_units=8, hidden_layers=2,
                                  epochs=naru_epochs, num_samples=samples),
            lambda: NaruEstimator(hidden_units=32, hidden_layers=2,
                                  epochs=naru_epochs, num_samples=samples),
            lambda: NaruEstimator(hidden_units=64, hidden_layers=3,
                                  epochs=naru_epochs, num_samples=samples),
            lambda: NaruEstimator(hidden_units=64, hidden_layers=3,
                                  learning_rate=2e-2, epochs=naru_epochs,
                                  num_samples=samples),
        ],
        "mscn": [
            lambda: MscnEstimator(hidden_units=8, epochs=scale_epochs),
            lambda: MscnEstimator(hidden_units=32, epochs=scale_epochs),
            lambda: MscnEstimator(hidden_units=64, epochs=scale_epochs),
            lambda: MscnEstimator(hidden_units=64, learning_rate=1e-2,
                                  epochs=scale_epochs),
        ],
        "lw-nn": [
            lambda: LwNnEstimator(hidden_units=(16,), epochs=scale_epochs),
            lambda: LwNnEstimator(hidden_units=(32, 32), epochs=scale_epochs),
            lambda: LwNnEstimator(hidden_units=(64, 64), epochs=scale_epochs),
            lambda: LwNnEstimator(hidden_units=(64, 64), learning_rate=1e-2,
                                  epochs=scale_epochs),
        ],
    }


def table5(
    ctx: BenchContext, datasets: list[str] | None = None
) -> dict[str, dict[str, float]]:
    """Worst/best ratio of max q-error across hyper-parameter settings."""
    datasets = datasets or DATASETS
    grid = _architecture_grid(
        ctx.scale.nn_epochs, ctx.scale.naru_epochs, ctx.scale.naru_samples
    )
    out: dict[str, dict[str, float]] = {m: {} for m in grid}
    for dataset in datasets:
        table = ctx.table(dataset)
        train = ctx.train_workload(dataset)
        test = ctx.test_workload(dataset)
        queries = list(test.queries)
        def _sensitivity_cell(factory, _rng) -> float:
            est = factory()
            est.fit(table, train if est.requires_workload else None)
            errors = qerrors(est.estimate_many(queries), test.cardinalities)
            return float(errors.max())

        executor = ctx.executor()
        for method, factories in grid.items():
            # The four architectures are independent training runs — the
            # very tuning cost Table 5 is about — so they fan out too.
            # Factories reach workers through fork-inherited memory.
            if executor is None:
                max_errors = [_sensitivity_cell(f, None) for f in factories]
            else:
                max_errors = executor.map_tasks(_sensitivity_cell, factories)
            out[method][dataset] = max(max_errors) / min(max_errors)
    return out


def format_table5(results: dict[str, dict[str, float]]) -> str:
    datasets = sorted(next(iter(results.values())).keys(), key=DATASETS.index)
    rows = [
        [method] + [f"{results[method][d]:.2f}" for d in datasets]
        for method in results
    ]
    return render_table(
        ["Estimator"] + datasets,
        rows,
        title="Table 5: worst/best max-q-error ratio across hyper-parameters",
    )
