"""Observability experiment: an instrumented train-and-serve pass whose
telemetry is the deliverable.

Where every other experiment reports accuracy or cost numbers, this one
exercises the :mod:`repro.obs` pipeline end to end and exports the raw
telemetry: a learned primary (plus LW-NN, so both a data-driven and a
query-driven training loop report per-epoch events) is trained under a
:class:`~repro.obs.TrainingMonitor`, a fallback-chain service replays
the test workload under a span collector, and the resulting spans /
metrics / events are dumped to ``benchmarks/results/`` as
``obs_spans.jsonl``, ``obs_metrics.prom`` (Prometheus exposition,
linted), ``obs_metrics.json`` and ``obs_events.jsonl``.

The report also cross-checks the two bookkeeping paths that must agree:
per-tier attempt counts in :meth:`ServiceHealth <repro.serve.ServiceHealth>`
versus per-tier latency-sample counts in the registry's exposition.

The experiment resets the process-wide metrics registry and event log
at entry (it is a measurement of the telemetry itself); the span
collector and training monitor are installed for its duration and the
previous ones restored after.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..obs import (
    SERVE_TIER_SECONDS,
    Histogram,
    get_collector,
    get_events,
    get_monitor,
    get_registry,
    install_collector,
    install_monitor,
    parse_exposition,
    span,
    uninstall_collector,
    uninstall_monitor,
)
from ..registry import make_estimator
from ..serve import EstimatorService
from .context import BenchContext
from .reporting import render_table

#: Fallback tiers behind the instrumented primary.
FALLBACKS = ["sampling", "postgres", "heuristic"]


@dataclass(frozen=True)
class ObsArtifacts:
    """Files the experiment wrote (empty paths when out_dir is None)."""

    spans_path: str
    metrics_text_path: str
    metrics_json_path: str
    events_path: str
    spans_written: int
    events_written: int


@dataclass(frozen=True)
class ObsReport:
    """Everything :func:`format_obs` renders."""

    models: tuple[str, ...]
    #: model -> (epochs recorded, first loss, last loss)
    training: dict[str, tuple[int, float, float]]
    #: (span name, count, total milliseconds)
    span_summary: tuple[tuple[str, int, float], ...]
    event_counts: dict[str, int]
    #: (tier, health attempts, exposition latency samples)
    tier_check: tuple[tuple[str, int, int], ...]
    health_text: str
    exposition_samples: int
    artifacts: ObsArtifacts | None


def obs_experiment(
    ctx: BenchContext,
    primary: str = "naru",
    dataset: str = "census",
    out_dir: str | Path | None = "benchmarks/results",
) -> ObsReport:
    """Train, serve, and export the telemetry both runs produced."""
    registry = get_registry()
    registry.reset()
    events = get_events()
    events.clear()
    previous_collector = get_collector()
    collector = install_collector()
    previous_monitor = get_monitor()
    monitor = install_monitor()
    try:
        table = ctx.table(dataset)
        test = ctx.test_workload(dataset)
        train = ctx.train_workload(dataset)

        models = [primary] + (["lw-nn"] if primary != "lw-nn" else [])
        tiers = []
        with span("obs.train"):
            for name in models:
                est = make_estimator(name, ctx.scale)
                est.fit(table, train if est.requires_workload else None)
                tiers.append(est)
        for name in FALLBACKS:
            est = make_estimator(name, ctx.scale)
            est.fit(table, train if est.requires_workload else None)
            tiers.append(est)

        service = EstimatorService(tiers, deadline_ms=250.0)
        with span("obs.replay", queries=len(test.queries)):
            service.serve_many(list(test.queries))
        health = service.health()

        exposition = registry.render_text()
        samples = parse_exposition(exposition)  # lints as a side effect

        tier_hist = registry.get(SERVE_TIER_SECONDS)
        assert isinstance(tier_hist, Histogram)
        tier_check = tuple(
            (t.tier, t.attempts, tier_hist.count(tier=t.tier)) for t in health.tiers
        )

        training = {
            model: (
                len(monitor.records_for(model)),
                monitor.losses(model)[0] if monitor.records_for(model) else 0.0,
                monitor.losses(model)[-1] if monitor.records_for(model) else 0.0,
            )
            for model in models
        }

        totals: dict[str, tuple[int, float]] = {}
        for s in collector.spans():
            count, total = totals.get(s.name, (0, 0.0))
            totals[s.name] = (count + 1, total + s.duration_seconds)
        span_summary = tuple(
            (name, count, 1000.0 * total)
            for name, (count, total) in sorted(totals.items())
        )

        artifacts = None
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            spans_path = out / "obs_spans.jsonl"
            metrics_text_path = out / "obs_metrics.prom"
            metrics_json_path = out / "obs_metrics.json"
            events_path = out / "obs_events.jsonl"
            spans_written = collector.to_jsonl(spans_path)
            metrics_text_path.write_text(exposition)
            registry.to_json(metrics_json_path)
            events_written = events.to_jsonl(events_path)
            artifacts = ObsArtifacts(
                spans_path=str(spans_path),
                metrics_text_path=str(metrics_text_path),
                metrics_json_path=str(metrics_json_path),
                events_path=str(events_path),
                spans_written=spans_written,
                events_written=events_written,
            )

        return ObsReport(
            models=tuple(models),
            training=training,
            span_summary=span_summary,
            event_counts=dict(events.kinds()),
            tier_check=tier_check,
            health_text=health.to_text(),
            exposition_samples=len(samples),
            artifacts=artifacts,
        )
    finally:
        if previous_collector is not None:
            install_collector(previous_collector)
        else:
            uninstall_collector()
        if previous_monitor is not None:
            install_monitor(previous_monitor)
        else:
            uninstall_monitor()


def format_obs(report: ObsReport) -> str:
    parts = [
        render_table(
            ["model", "epochs", "first loss", "last loss"],
            [
                [model, count, f"{first:.4f}", f"{last:.4f}"]
                for model, (count, first, last) in report.training.items()
            ],
            title="Observability: per-epoch training telemetry captured",
        ),
        render_table(
            ["span", "count", "total(ms)"],
            [[n, c, f"{ms:.1f}"] for n, c, ms in report.span_summary],
            title="Trace spans by name",
        ),
        render_table(
            ["tier", "health attempts", "exposition samples", "agree"],
            [
                [tier, attempts, samples, "yes" if attempts == samples else "NO"]
                for tier, attempts, samples in report.tier_check
            ],
            title="Cross-check: ServiceHealth counters vs metrics exposition",
        ),
        "Events: "
        + (
            " ".join(f"{k}={v}" for k, v in sorted(report.event_counts.items()))
            or "none"
        ),
        f"Exposition: {report.exposition_samples} samples (lint passed)",
        report.health_text,
    ]
    if report.artifacts is not None:
        a = report.artifacts
        parts.append(
            f"Artifacts: {a.spans_path} ({a.spans_written} spans), "
            f"{a.metrics_text_path}, {a.metrics_json_path}, "
            f"{a.events_path} ({a.events_written} events)"
        )
    return "\n\n".join(parts)
