"""Observability report: per-tenant SLO dashboard, exemplars, overhead.

Where :mod:`repro.bench.obs_exp` exercises the in-process telemetry
pipeline (spans, metrics, training monitor), this experiment exercises
the *cross-process* layer end to end and renders what an operator of the
sharded serving tier would actually look at:

* a sharded replay (forked workers, telemetry piggybacked on the reply
  pipes) driven through a forced **SLO breach → recovery cycle**: slowed
  workers burn every tenant's latency error budget, a mid-replay swap to
  the clean model recovers them;
* a **ground-truth feedback pass** (``record_actual``) that labels a
  slice of the served estimates, feeding the per-tenant accuracy SLO and
  the worst-q-error exemplar board;
* the **per-tenant SLO dashboard** (burn rates, breach counts), the
  **exemplar boards** (worst q-error and slowest estimates, each linked
  to its trace id), and the cross-process **telemetry invariant** check
  (merged per-worker counters vs the parent's accepted answers);
* an **overhead micro-benchmark**: batch-serve throughput through a
  worker pool with telemetry on vs off (best of N trials each); the
  acceptance bar is telemetry costing under 5% of throughput.

Artifacts: ``benchmarks/results/obs_report.jsonl`` (SLO statuses,
board-tagged exemplars and the overhead record, one JSON object per
line) and ``benchmarks/results/obs_overhead.txt`` (the overhead
verdict).  When the CLI installed a span collector (``--trace-out``),
merged worker spans land in it and ride along in the exported trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..core.query import Query
from ..faults import SlowWorkerFault, queue_flood
from ..obs import (
    WORKER_QUERIES,
    EventLog,
    ExemplarStore,
    MetricsRegistry,
    SloRegistry,
    SloStatus,
    SpanCollector,
    get_collector,
    install_collector,
    uninstall_collector,
)
from ..obs.clock import perf_counter
from ..obs.slo import LATENCY, QERROR, SloObjective
from ..serve import HeuristicConstantEstimator
from ..shard import ShardRequest, ShardRouter
from ..shard.supervisor import WorkerSupervisor
from .context import BenchContext
from .reporting import render_table

#: replay sizes per scale preset (small on purpose: the deliverable is
#: the telemetry, not the throughput number)
OBS_REPLAY = {"ci": 2_048, "default": 8_192, "paper": 16_384}

#: dispatch batch size for the breach/recovery replay
OBS_CHUNK = 256

#: queries per overhead-trial (one pool, fork round trips included);
#: the chunk matches the serving tier's DEFAULT_CHUNK so the snapshot
#: cost is amortised exactly as it is in production dispatch
OVERHEAD_QUERIES = 16_384
OVERHEAD_CHUNK = 2_048

#: tight latency objective (milliseconds): slowed workers sit far above
#: it, a healthy pool far below — see SLO_BREACH_OBJECTIVE in scale_exp
LATENCY_OBJECTIVE = SloObjective(
    LATENCY,
    threshold=0.3,
    target=0.99,
    fast_window=64,
    slow_window=256,
    breach_burn_rate=20.0,
    recover_burn_rate=1.0,
    min_samples=64,
)

#: accuracy objective fed by the record_actual feedback pass: a sample
#: is bad when its q-error exceeds 4x
QERROR_OBJECTIVE = SloObjective(
    QERROR,
    threshold=4.0,
    target=0.90,
    fast_window=32,
    slow_window=128,
    breach_burn_rate=2.0,
    recover_burn_rate=1.0,
    min_samples=16,
)


@dataclass(frozen=True)
class ObsOverhead:
    """Telemetry on/off batch-serve throughput comparison."""

    telemetry_on_qps: float
    telemetry_off_qps: float
    trials: int
    queries: int
    chunk: int
    mode: str

    @property
    def overhead_fraction(self) -> float:
        """Throughput given up to telemetry (negative = within noise)."""
        if self.telemetry_off_qps <= 0.0:
            return 0.0
        return 1.0 - self.telemetry_on_qps / self.telemetry_off_qps

    def to_dict(self) -> dict:
        return {
            "record": "overhead",
            "telemetry_on_qps": self.telemetry_on_qps,
            "telemetry_off_qps": self.telemetry_off_qps,
            "overhead_fraction": self.overhead_fraction,
            "trials": self.trials,
            "queries": self.queries,
            "chunk": self.chunk,
            "mode": self.mode,
        }


@dataclass(frozen=True)
class ObsReportResult:
    """Everything :func:`format_obs_report` renders."""

    queries: int
    tenants: tuple[str, ...]
    statuses: tuple[SloStatus, ...]
    #: slo.breach / slo.recovered transitions in emission order
    slo_transitions: tuple[str, ...]
    #: worst-q-error exemplars, worst first (merged across tenants)
    worst_qerror: tuple
    #: slowest-estimate exemplars, slowest first
    slowest: tuple
    #: labelled feedback samples fed through record_actual
    labelled: int
    #: merged per-worker serve counters sum == parent's accepted answers
    telemetry_consistent: bool
    merged_worker_queries: int
    worker_answered: int
    #: merged spans carrying a worker_pid attribute
    worker_spans: int
    #: >=1 worker span re-parented under a serve.batch span
    worker_spans_reparented: bool | None
    overhead: ObsOverhead
    jsonl_path: str | None
    overhead_path: str | None


def _stream(ctx: BenchContext, dataset: str, target: int) -> list[Query]:
    base = list(ctx.test_workload(dataset).queries)
    multiplier = max(1, -(-target // len(base)))  # ceil
    return queue_flood(base, multiplier=multiplier, seed=ctx.seed)[:target]


def measure_overhead(
    ctx: BenchContext,
    *,
    dataset: str = "census",
    trials: int = 3,
    queries: int = OVERHEAD_QUERIES,
    chunk: int = OVERHEAD_CHUNK,
    mode: str = "auto",
) -> ObsOverhead:
    """Best-of-``trials`` dispatch throughput, telemetry on vs off.

    Each trial forks a fresh single-worker pool (so capture install cost
    is paid inside the measured region's setup, not amortised away) and
    replays the same chunked stream.  Best-of damps scheduler noise; the
    *ratio* of the two bests is the overhead.
    """
    estimator = ctx.fresh_estimator("sampling", dataset)
    stream = _stream(ctx, dataset, queries)
    best = {True: 0.0, False: 0.0}
    resolved_mode = mode
    # Interleave on/off trials so slow machine drift (thermal, cache)
    # hits both sides evenly instead of biasing whichever ran last.
    for _ in range(trials):
        for telemetry in (True, False):
            supervisor = WorkerSupervisor(
                "overhead",
                estimator,
                1,
                mode=mode,
                telemetry=telemetry,
                registry=MetricsRegistry(),
                events=EventLog(),
            )
            resolved_mode = supervisor.mode
            supervisor.start()
            try:
                supervisor.dispatch(stream[:chunk])  # warm the pipe
                start = perf_counter()
                for lo in range(0, len(stream), chunk):
                    supervisor.dispatch(stream[lo : lo + chunk])
                qps = len(stream) / (perf_counter() - start)
            finally:
                supervisor.drain()
            best[telemetry] = max(best[telemetry], qps)
    return ObsOverhead(
        telemetry_on_qps=best[True],
        telemetry_off_qps=best[False],
        trials=trials,
        queries=queries,
        chunk=chunk,
        mode=resolved_mode,
    )


def obs_report_experiment(
    ctx: BenchContext,
    *,
    dataset: str = "census",
    replay: int | None = None,
    num_shards: int = 2,
    workers_per_shard: int = 2,
    mode: str = "auto",
    trials: int = 3,
    out_dir: str | Path | None = "benchmarks/results",
) -> ObsReportResult:
    """Run the breach/recovery replay, label feedback, measure overhead."""
    table = ctx.table(dataset)
    primary = ctx.fresh_estimator("sampling", dataset)
    heuristic = HeuristicConstantEstimator()
    heuristic.fit(table)
    slow = SlowWorkerFault(
        primary, delay_seconds=0.15, probability=1.0, seed=ctx.seed
    )
    slow.fit(table)

    registry = MetricsRegistry()
    events = EventLog()
    slos = SloRegistry(registry=registry, events=events)
    slos.set_objective(LATENCY_OBJECTIVE)
    slos.set_objective(QERROR_OBJECTIVE)
    exemplars = ExemplarStore(per_tenant=4)
    collector = get_collector()
    owns_collector = collector is None
    if owns_collector:
        collector = install_collector(SpanCollector(capacity=16_384))

    target = replay if replay is not None else OBS_REPLAY[ctx.scale.name]
    stream = _stream(ctx, dataset, target)
    requests = [
        ShardRequest(query=q, tenant=f"t{i % 4}", priority=i % 3)
        for i, q in enumerate(stream)
    ]
    swap_at = (len(requests) // (2 * OBS_CHUNK)) * OBS_CHUNK

    router = ShardRouter(
        primary,
        [heuristic],
        num_shards=num_shards,
        workers_per_shard=workers_per_shard,
        worker_estimator=slow,
        mode=mode,
        seed=ctx.seed,
        events=events,
        registry=registry,
        slos=slos,
        exemplars=exemplars,
    )
    served_all = []
    try:
        with router:
            for lo in range(0, len(requests), OBS_CHUNK):
                if lo == swap_at:
                    # Recovery: every shard back on the clean model.
                    for shard in router.shards.values():
                        shard.swap_model(primary)
                served_all.extend(
                    router.serve_batch(requests[lo : lo + OBS_CHUNK])
                )
            # Ground-truth feedback: label a slice of the requests and
            # feed the q-error back — the accuracy SLO and the
            # worst-q-error board only see what this path reports.  The
            # stride is coprime with the tenant period so every tenant
            # gets labelled samples.
            sample = list(range(0, len(requests), 5))
            actuals = table.cardinalities(
                [requests[i].query for i in sample]
            )
            for i, actual in zip(sample, actuals):
                router.record_actual(requests[i], served_all[i], float(actual))
            totals = router.totals()

        merged_worker_queries = int(
            sum(
                series["value"]
                for series in registry.counter(WORKER_QUERIES).snapshot()[
                    "series"
                ]
            )
        )
        spans = collector.spans()
        worker_spans = [s for s in spans if "worker_pid" in s.attrs]
        batch_span_ids = {s.span_id for s in spans if s.name == "serve.batch"}
        worker_spans_reparented = (
            any(s.parent_id in batch_span_ids for s in worker_spans)
            if worker_spans
            else None
        )
    finally:
        if owns_collector:
            uninstall_collector()

    slo_transitions = tuple(
        e.kind.removeprefix("slo.")
        for e in events.events()
        if e.kind in ("slo.breach", "slo.recovered")
    )
    statuses = tuple(slos.statuses())
    overhead = measure_overhead(
        ctx, dataset=dataset, trials=trials, mode=mode
    )

    jsonl_path = overhead_path = None
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        jsonl = out / "obs_report.jsonl"
        with open(jsonl, "w") as fh:
            for status in statuses:
                fh.write(
                    json.dumps(
                        {"record": "slo_status", **status.to_dict()},
                        sort_keys=True,
                    )
                    + "\n"
                )
            for board, items in (
                ("worst_qerror", exemplars.worst_qerror()),
                ("slowest", exemplars.slowest()),
            ):
                for exemplar in items:
                    fh.write(
                        json.dumps(
                            {
                                "record": "exemplar",
                                "board": board,
                                **exemplar.to_dict(),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
            fh.write(json.dumps(overhead.to_dict(), sort_keys=True) + "\n")
        jsonl_path = str(jsonl)
        overhead_txt = out / "obs_overhead.txt"
        overhead_txt.write_text(format_overhead(overhead) + "\n")
        overhead_path = str(overhead_txt)

    return ObsReportResult(
        queries=len(requests),
        tenants=tuple(sorted({r.tenant for r in requests})),
        statuses=statuses,
        slo_transitions=slo_transitions,
        worst_qerror=tuple(exemplars.worst_qerror()[:8]),
        slowest=tuple(exemplars.slowest()[:8]),
        labelled=len(sample),
        telemetry_consistent=merged_worker_queries == totals.worker_answered,
        merged_worker_queries=merged_worker_queries,
        worker_answered=totals.worker_answered,
        worker_spans=len(worker_spans),
        worker_spans_reparented=worker_spans_reparented,
        overhead=overhead,
        jsonl_path=jsonl_path,
        overhead_path=overhead_path,
    )


def format_overhead(overhead: ObsOverhead) -> str:
    """The obs_overhead.txt artifact: the <5% acceptance bar, verdict."""
    pct = 100.0 * overhead.overhead_fraction
    verdict = "PASS" if overhead.overhead_fraction < 0.05 else "FAIL"
    return "\n".join(
        [
            "Cross-process telemetry overhead "
            "(batch dispatch through one supervised worker)",
            f"  mode:            {overhead.mode}",
            f"  stream:          {overhead.queries:,} queries, "
            f"chunk {overhead.chunk}, best of {overhead.trials} trials",
            f"  telemetry on:    {overhead.telemetry_on_qps:,.0f} qps",
            f"  telemetry off:   {overhead.telemetry_off_qps:,.0f} qps",
            f"  overhead:        {pct:.2f}% of throughput",
            f"  bar:             < 5%  ->  {verdict}",
        ]
    )


def format_obs_report(result: ObsReportResult) -> str:
    parts = [
        render_table(
            [
                "tenant",
                "objective",
                "target",
                "samples",
                "bad",
                "fast burn",
                "slow burn",
                "breached",
                "breaches",
                "recoveries",
            ],
            [
                [
                    s.tenant,
                    s.objective,
                    f"{s.target:.2f}",
                    s.samples,
                    s.bad_samples,
                    f"{s.fast_burn_rate:.1f}",
                    f"{s.slow_burn_rate:.1f}",
                    "yes" if s.breached else "no",
                    s.breaches,
                    s.recoveries,
                ]
                for s in result.statuses
            ],
            title=(
                f"Per-tenant SLOs after {result.queries:,} requests "
                f"(breach phase -> clean-model recovery; "
                f"{result.labelled} estimates labelled via record_actual)"
            ),
        ),
        "SLO transitions: "
        + (" -> ".join(result.slo_transitions) or "none"),
        render_table(
            ["tenant", "estimator", "qerror", "estimate", "actual", "trace"],
            [
                [
                    e.tenant,
                    e.estimator,
                    f"{e.qerror:.2f}",
                    f"{e.estimate:.0f}",
                    f"{e.actual:.0f}",
                    e.trace_id or "-",
                ]
                for e in result.worst_qerror
            ],
            title="Worst-q-error exemplars (each links to its trace)",
        ),
        render_table(
            ["tenant", "estimator", "latency(ms)", "trace"],
            [
                [
                    e.tenant,
                    e.estimator,
                    f"{1000.0 * e.latency_seconds:.3f}",
                    e.trace_id or "-",
                ]
                for e in result.slowest
            ],
            title="Slowest-estimate exemplars",
        ),
        (
            f"Telemetry invariant: merged worker counters "
            f"{result.merged_worker_queries:,} vs accepted answers "
            f"{result.worker_answered:,} -> "
            + ("CONSISTENT" if result.telemetry_consistent else "MISMATCH")
        ),
        (
            f"Worker spans merged: {result.worker_spans} "
            + (
                "(re-parented under serve.batch)"
                if result.worker_spans_reparented
                else "(no re-parented span!)"
                if result.worker_spans_reparented is False
                else "(inline mode: none expected)"
            )
        ),
        format_overhead(result.overhead),
    ]
    if result.jsonl_path:
        parts.append(
            f"Artifacts: {result.jsonl_path}, {result.overhead_path}"
        )
    return "\n\n".join(parts)
