"""Table 6: logical-rule satisfaction of the learned estimators."""

from __future__ import annotations

import numpy as np

from ..core.workload import generate_workload
from ..datasets.synthetic import generate_synthetic
from ..registry import LEARNED_NAMES, make_estimator
from ..rules import RuleReport, check_all
from .context import BenchContext
from .reporting import render_table

RULE_ORDER = ["monotonicity", "consistency", "stability", "fidelity-a", "fidelity-b"]


def table6(
    ctx: BenchContext, methods: list[str] | None = None, num_checks: int = 40
) -> dict[str, dict[str, RuleReport]]:
    """Check every learned method against the five rules (Section 6.3).

    Probes run on a moderately correlated synthetic table (the Section 6
    setting); the native model outputs are checked, with no fix-ups.
    """
    methods = methods or LEARNED_NAMES
    rng = np.random.default_rng(ctx.seed + 43)
    table = generate_synthetic(
        ctx.scale.synthetic_rows, skew=1.0, correlation=0.8, domain_size=100, rng=rng
    )
    train = generate_workload(table, ctx.scale.train_queries, rng)
    out: dict[str, dict[str, RuleReport]] = {}
    for method in methods:
        est = make_estimator(method, ctx.scale)
        est.fit(table, train if est.requires_workload else None)
        out[method] = check_all(est, table, rng, num_checks=num_checks)
    return out


def format_table6(results: dict[str, dict[str, RuleReport]]) -> str:
    methods = list(results)
    rows = []
    for rule in RULE_ORDER:
        row: list[object] = [rule]
        for method in methods:
            report = results[method][rule]
            row.append("/" if report.satisfied else "x")
        rows.append(row)
    return render_table(
        ["Rule"] + methods,
        rows,
        title="Table 6: rule satisfaction (/ = satisfied, x = violated)",
    )
