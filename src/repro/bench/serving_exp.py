"""Serving-under-faults experiment: replay a workload through the
fault-tolerant service while the primary estimator misbehaves.

For each fault scenario the same workload is replayed twice: once
through an :class:`~repro.serve.EstimatorService` whose primary tier is
wrapped in the scenario's fault injector, and once against an
*unguarded* copy of the same faulty primary (same seed, so the same
fault schedule).  The comparison quantifies what the serving layer buys:
availability (fraction of queries answered with a finite, in-bounds
estimate), fallback rate, and the q-error cost of degrading to
traditional tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.metrics import format_qerror, qerrors
from ..datasets.updates import apply_update
from ..dynamic.environment import label_update_workload
from ..obs import percentile_ms
from ..faults import (
    CorruptionFault,
    ExceptionFault,
    LatencyFault,
    NaNFault,
    StaleModelFault,
)
from ..registry import DEFAULT_FALLBACK_NAMES, make_estimator
from ..rules.enforce import is_sane
from ..serve import BreakerConfig, EstimatorService
from .context import BenchContext
from .reporting import render_table


@dataclass(frozen=True)
class Scenario:
    """One fault configuration applied to the primary tier."""

    name: str
    #: wraps the fitted primary in a fault injector (identity for baseline)
    wrap: Callable[[CardinalityEstimator, int], CardinalityEstimator]
    #: per-query deadline handed to the service, milliseconds
    deadline_ms: float = 250.0
    #: True to apply a Section 5 data update before the replay
    update: bool = False


def default_scenarios() -> list[Scenario]:
    """The fault matrix replayed by :func:`serving_experiment`."""
    return [
        Scenario("no-fault", lambda est, seed: est),
        Scenario(
            "nan-storm",
            lambda est, seed: NaNFault(est, probability=1.0, seed=seed),
        ),
        Scenario(
            "exception-storm",
            lambda est, seed: ExceptionFault(est, probability=1.0, seed=seed),
        ),
        Scenario(
            "flaky-25%",
            lambda est, seed: ExceptionFault(est, probability=0.25, seed=seed),
        ),
        Scenario(
            "slow-primary",
            lambda est, seed: LatencyFault(
                est, delay_seconds=0.05, probability=1.0, seed=seed
            ),
            deadline_ms=10.0,
        ),
        Scenario(
            "corrupted-artifact",
            lambda est, seed: CorruptionFault(est, probability=1.0, seed=seed),
        ),
        Scenario(
            "stale-model",
            lambda est, seed: StaleModelFault(est, seed=seed),
            update=True,
        ),
    ]


@dataclass(frozen=True)
class ScenarioResult:
    """Guarded-vs-unguarded outcome of one fault scenario."""

    scenario: str
    queries: int
    availability: float
    unguarded_availability: float
    fallback_rate: float
    last_resort_rate: float
    primary_breaker: str
    primary_trips: int
    service_p50: float
    service_p99: float
    #: q-errors over only the queries the unguarded primary answered
    #: sanely; None when it answered none at all
    unguarded_p50: float | None
    unguarded_p99: float | None
    p50_latency_ms: float


def run_scenario(
    ctx: BenchContext,
    scenario: Scenario,
    primary: str = "naru",
    dataset: str = "census",
    fallbacks: list[str] | None = None,
) -> ScenarioResult:
    """Replay the test workload under one fault scenario."""
    table = ctx.table(dataset)
    test = ctx.test_workload(dataset)
    seed = ctx.seed + 17

    guarded = scenario.wrap(ctx.fresh_estimator(primary, dataset), seed)
    unguarded = scenario.wrap(ctx.fresh_estimator(primary, dataset), seed)
    tiers: list[CardinalityEstimator] = [guarded]
    for name in fallbacks if fallbacks is not None else DEFAULT_FALLBACK_NAMES:
        tier = make_estimator(name, ctx.scale)
        workload = ctx.train_workload(dataset) if tier.requires_workload else None
        tiers.append(tier.fit(table, workload))
    service = EstimatorService(
        tiers,
        deadline_ms=scenario.deadline_ms,
        breaker=BreakerConfig(failure_threshold=5, recovery_seconds=30.0),
    )

    queries = list(test.queries)
    actuals = test.cardinalities
    if scenario.update:
        rng = np.random.default_rng(ctx.seed + 7)
        new_table, appended = apply_update(table, rng)
        actuals = new_table.cardinalities(queries)
        update_workload, _ = label_update_workload(
            service, new_table, ctx.scale.update_queries, rng
        )
        service.update(new_table, appended, update_workload)
        unguarded.update(new_table, appended, update_workload)
        table = new_table

    served = service.serve_many(queries)
    estimates = np.array([s.estimate for s in served])
    sane = [is_sane(e, table.num_rows) for e in estimates]
    service_q = qerrors(estimates, actuals)
    health = service.health()
    primary_tier = health.tiers[0]

    answered_idx, answered_vals = [], []
    for i, query in enumerate(queries):
        try:
            value = unguarded.estimate(query)
        except Exception:  # lint-ok: unanswered queries ARE the measurement
            continue
        if is_sane(value, table.num_rows):
            answered_idx.append(i)
            answered_vals.append(value)
    if answered_idx:
        unguarded_q = qerrors(np.array(answered_vals), actuals[answered_idx])
        unguarded_p50 = float(np.percentile(unguarded_q, 50.0))
        unguarded_p99 = float(np.percentile(unguarded_q, 99.0))
    else:
        unguarded_p50 = unguarded_p99 = None

    return ScenarioResult(
        scenario=scenario.name,
        queries=len(queries),
        availability=float(np.mean(sane)),
        unguarded_availability=len(answered_idx) / len(queries),
        fallback_rate=float(np.mean([s.degraded for s in served])),
        last_resort_rate=float(np.mean([s.tier == "last-resort" for s in served])),
        primary_breaker=primary_tier.state,
        primary_trips=primary_tier.trips,
        service_p50=float(np.percentile(service_q, 50.0)),
        service_p99=float(np.percentile(service_q, 99.0)),
        unguarded_p50=unguarded_p50,
        unguarded_p99=unguarded_p99,
        p50_latency_ms=percentile_ms((s.latency_seconds for s in served), 50.0),
    )


def serving_experiment(
    ctx: BenchContext,
    primary: str = "naru",
    dataset: str = "census",
    scenarios: list[Scenario] | None = None,
) -> list[ScenarioResult]:
    """Run every fault scenario against one primary estimator."""
    return [
        run_scenario(ctx, scenario, primary, dataset)
        for scenario in (scenarios or default_scenarios())
    ]


def format_serving(results: list[ScenarioResult], primary: str = "naru") -> str:
    def pct(x: float) -> str:
        return f"{100.0 * x:.0f}%"

    rows = []
    for r in results:
        rows.append(
            [
                r.scenario,
                pct(r.availability),
                pct(r.unguarded_availability),
                pct(r.fallback_rate),
                pct(r.last_resort_rate),
                f"{r.primary_breaker}/{r.primary_trips}",
                format_qerror(r.service_p50),
                format_qerror(r.service_p99),
                "-" if r.unguarded_p50 is None else format_qerror(r.unguarded_p50),
                "-" if r.unguarded_p99 is None else format_qerror(r.unguarded_p99),
                f"{r.p50_latency_ms:.2f}",
            ]
        )
    return render_table(
        [
            "scenario",
            "avail",
            "raw-avail",
            "fallback",
            "last-resort",
            "breaker/trips",
            "p50",
            "p99",
            "raw-p50",
            "raw-p99",
            "lat-p50(ms)",
        ],
        rows,
        title=(
            f"Serving under faults: {primary} primary behind "
            "sampling -> postgres -> heuristic (avail = finite in-bounds "
            "answers; raw = unguarded primary)"
        ),
    )
