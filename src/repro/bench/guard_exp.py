"""Guard bench: what the guardrail tier buys under adversarial faults.

The guard subsystem (:mod:`repro.guard`) exists for the failure modes
no NaN/inf sanity check catches: plausible-looking estimates that are
systematically wrong.  This experiment replays three such stresses —
the :mod:`repro.faults` adversarial wrappers — against the same serving
chain with guardrails **off** and **on**:

* **correlated-shift** — AVI-style geometric overestimates
  (:class:`~repro.faults.CorrelatedShiftFault`); the provable upper
  bound clamps them.
* **ood-shift** — queries outside the training domain, answered by a
  domain-shifted model (:class:`~repro.faults.DomainShiftFault`); OOD
  detection reroutes them past the learned tier and the bound sketch
  pins the answer (far-OOD ranges have a provable cardinality of 0).
* **update-skew** — :class:`~repro.faults.UpdateSkewFault` feeds the
  model a biased slice of every append; the q-error feedback loop
  (:class:`~repro.guard.QuarantineMonitor`) demotes it, so the
  steady-state worst case is the bounded safe tier's.

A separate **quarantine cycle** drives a bounded incident window
(``until``-scheduled underestimates, which no bound can catch) through
demotion and automatic probe-gated re-admission.  Latency overhead is
measured on a clean chain, guard off vs on.

Results merge into ``BENCH_serve.json`` under a ``guard`` key — the
scale experiment's sections are preserved verbatim, the same merge
discipline ``fastpath`` uses in ``BENCH_batch.json`` — plus the
human-readable ``benchmarks/results/guard.txt``.  Acceptance: overall
worst-case q-error with guardrails on is <= 1/10th of the unguarded
worst case, availability stays 1.0, and clean-path p50 overhead is
under 10%.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.query import Predicate, Query
from ..core.workload import generate_workload
from ..datasets.updates import apply_update
from ..faults import CorrelatedShiftFault, DomainShiftFault, UpdateSkewFault
from ..guard import HEALTHY, EstimateGuard, QuarantineMonitor
from ..obs.clock import perf_counter
from ..serve import EstimatorService, HeuristicConstantEstimator
from .context import BenchContext
from .reporting import render_table

#: the learned primary under test (fast to fit, deterministic)
DEFAULT_METHOD = "lw-xgb"
DEFAULT_DATASET = "census"

#: replay length per scenario arm
DEFAULT_REPLAY = 200

#: acceptance bars (see module docstring)
ACCEPTANCE_IMPROVEMENT = 10.0
ACCEPTANCE_OVERHEAD = 0.10
ACCEPTANCE_AVAILABILITY = 1.0


@dataclass(frozen=True)
class GuardScenarioResult:
    """One stress scenario, guardrails off vs on."""

    scenario: str
    queries: int
    #: worst / p95 q-error over the measured window, unguarded
    worst_q_off: float
    p95_q_off: float
    #: same window, guard installed
    worst_q_on: float
    p95_q_on: float
    #: worst_q_off / worst_q_on
    improvement: float
    availability: float
    #: guard actions during the "on" arm
    clamped: int
    ood_rerouted: int
    demotions: int


@dataclass(frozen=True)
class QuarantineCycleResult:
    """The demote -> probe -> re-admit loop under a bounded incident."""

    serves: int
    demoted_after: int
    demotions: int
    probes_failed: int
    readmissions: int
    final_state: str


@dataclass(frozen=True)
class GuardBenchResult:
    """Everything the guard experiment measures."""

    method: str
    dataset: str
    scenarios: list[GuardScenarioResult]
    quarantine: QuarantineCycleResult
    p50_off_us: float
    p50_on_us: float
    p50_overhead_fraction: float
    #: max worst-q off across scenarios / max worst-q on across scenarios
    worst_case_improvement: float
    availability: float


def _qerr(estimate: float, actual: float) -> float:
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def _ood_queries(table, queries, fraction: float = 1.5) -> list[Query]:
    """Translate every predicate ``fraction`` column-spans upward —
    far enough outside the trained domain that the true cardinality is
    provably 0 and the OOD score clears any sane threshold."""
    data = table.data
    shifted = []
    for query in queries:
        preds = []
        for p in query.predicates:
            column = data[:, p.column]
            lo_v, hi_v = float(column.min()), float(column.max())
            shift = fraction * ((hi_v - lo_v) or 1.0)
            preds.append(
                Predicate(
                    p.column,
                    (p.lo if p.lo is not None else lo_v) + shift,
                    (p.hi if p.hi is not None else hi_v) + shift,
                )
            )
        shifted.append(Query(tuple(preds)))
    return shifted


def _guarded_service(
    primary, table, *, guarded: bool, quarantine: dict | None = None
) -> EstimatorService:
    """The off/on chain: ``primary`` then the heuristic last resort."""
    guard = None
    if guarded:
        guard = EstimateGuard()
        guard.fit(table)
    heuristic = HeuristicConstantEstimator()
    heuristic.fit(table)
    service = EstimatorService(
        [primary, heuristic], deadline_ms=None, guard=guard
    )
    if guarded and quarantine is not None:
        guard.monitor = QuarantineMonitor(service, **quarantine)
    return service


def _replay(
    service: EstimatorService,
    queries,
    actuals,
    *,
    feedback: bool,
    measure_from: int = 0,
) -> tuple[float, float, float]:
    """(worst q, p95 q, availability) over ``queries[measure_from:]``."""
    qerrs = []
    answered = 0
    for i, (query, actual) in enumerate(zip(queries, actuals)):
        served = service.serve(query)
        answered += 1
        if feedback:
            service.record_actual(query, served, float(actual), tenant="bench")
        if i >= measure_from:
            qerrs.append(_qerr(served.estimate, float(actual)))
    errs = np.asarray(qerrs)
    return float(errs.max()), float(np.percentile(errs, 95.0)), answered / len(queries)


def guard_scenarios(
    ctx: BenchContext,
    dataset: str = DEFAULT_DATASET,
    method: str = DEFAULT_METHOD,
    replay: int = DEFAULT_REPLAY,
) -> list[GuardScenarioResult]:
    """Run the three adversarial stresses, guardrails off vs on."""
    table = ctx.table(dataset)
    fitted = ctx.estimator(method, dataset)
    rng = np.random.default_rng(ctx.seed + 301)
    workload = generate_workload(table, replay, rng)
    queries = list(workload.queries)
    actuals = np.asarray(workload.cardinalities, dtype=np.float64)

    results = []
    for scenario in ("correlated-shift", "ood-shift", "update-skew"):
        arm: dict[str, tuple[float, float, float]] = {}
        guard_stats = (0, 0, 0)
        for mode in ("off", "on"):
            guarded = mode == "on"
            primary = copy.deepcopy(fitted)
            serve_queries, serve_actuals = queries, actuals
            feedback = False
            measure_from = 0
            quarantine = None

            if scenario == "correlated-shift":
                primary = CorrelatedShiftFault(
                    primary, magnitude=8.0, seed=ctx.seed
                )
            elif scenario == "ood-shift":
                primary = DomainShiftFault(
                    primary, shift_fraction=-1.5, seed=ctx.seed
                )
                serve_queries = _ood_queries(table, queries)
                serve_actuals = table.cardinalities(serve_queries)
            else:  # update-skew: the guard arm gets the feedback loop
                primary = UpdateSkewFault(primary, seed=ctx.seed)
                feedback = guarded
                # quarantine needs a feedback window to engage; score
                # the steady state on both arms for a fair comparison
                measure_from = len(queries) // 2
                quarantine = {
                    "probe_queries": queries[:32],
                    "qerror_threshold": 8.0,
                    "window": 32,
                    "min_samples": 8,
                    "breach_fraction": 0.5,
                    "probe_interval": 16,
                }

            service = _guarded_service(
                primary, table, guarded=guarded, quarantine=quarantine
            )
            if scenario == "update-skew":
                update_rng = np.random.default_rng(ctx.seed + 302)
                new_table, appended = apply_update(table, update_rng)
                service.update(
                    new_table,
                    appended,
                    generate_workload(
                        new_table, ctx.scale.train_queries, update_rng
                    ),
                )
                serve_queries = list(
                    generate_workload(
                        new_table, replay, np.random.default_rng(ctx.seed + 303)
                    ).queries
                )
                serve_actuals = new_table.cardinalities(serve_queries)

            arm[mode] = _replay(
                service,
                serve_queries,
                serve_actuals,
                feedback=feedback,
                measure_from=measure_from,
            )
            if guarded:
                guard = service.guard
                monitor = guard.monitor
                guard_stats = (
                    guard.clamped,
                    guard.ood_rerouted,
                    0 if monitor is None else monitor.demotions,
                )

        worst_off, p95_off, avail_off = arm["off"]
        worst_on, p95_on, avail_on = arm["on"]
        results.append(
            GuardScenarioResult(
                scenario=scenario,
                queries=replay,
                worst_q_off=worst_off,
                p95_q_off=p95_off,
                worst_q_on=worst_on,
                p95_q_on=p95_on,
                improvement=worst_off / max(worst_on, 1.0),
                availability=min(avail_off, avail_on),
                clamped=guard_stats[0],
                ood_rerouted=guard_stats[1],
                demotions=guard_stats[2],
            )
        )
    return results


def quarantine_cycle(
    ctx: BenchContext,
    dataset: str = DEFAULT_DATASET,
    method: str = DEFAULT_METHOD,
    max_serves: int = 160,
) -> QuarantineCycleResult:
    """Drive a bounded incident through demote -> probe -> re-admit.

    The fault window (`until`) produces geometric *under*estimates —
    invisible to the upper bound — so only the q-error feedback stream
    can catch it.  After the window closes, the periodic probe gate
    sees the model answer cleanly and re-admits it.
    """
    table = ctx.table(dataset)
    fitted = ctx.estimator(method, dataset)
    rng = np.random.default_rng(ctx.seed + 304)
    probe = generate_workload(table, 40, rng)
    workload = generate_workload(table, 256, np.random.default_rng(ctx.seed + 305))
    # Underestimates only register as q-error when the truth is big:
    # replay the heavy-hitter queries, where a deflated answer is
    # unmistakably wrong.
    heavy = [
        i for i, c in enumerate(workload.cardinalities) if c >= 64.0
    ] or list(range(len(workload.queries)))
    queries = [workload.queries[i] for i in heavy]
    actuals = np.asarray(
        [workload.cardinalities[i] for i in heavy], dtype=np.float64
    )

    faulted = CorrelatedShiftFault(
        copy.deepcopy(fitted), magnitude=1.0 / 64.0, until=24, seed=ctx.seed
    )
    service = _guarded_service(
        faulted,
        table,
        guarded=True,
        quarantine={
            "probe_queries": list(probe.queries),
            "qerror_threshold": 8.0,
            "window": 16,
            "min_samples": 8,
            "breach_fraction": 0.5,
            "probe_interval": 16,
        },
    )
    monitor = service.guard.monitor

    serves = 0
    demoted_after = 0
    for i in range(max_serves):
        query = queries[i % len(queries)]
        actual = float(actuals[i % len(actuals)])
        served = service.serve(query)
        service.record_actual(query, served, actual, tenant="bench")
        serves += 1
        status = monitor.status()
        if not demoted_after and status.demotions:
            demoted_after = serves
        if status.readmissions:
            break

    status = monitor.status()
    return QuarantineCycleResult(
        serves=serves,
        demoted_after=demoted_after,
        demotions=status.demotions,
        probes_failed=status.probes_failed,
        readmissions=status.readmissions,
        final_state=status.state,
    )


def latency_overhead(
    ctx: BenchContext,
    dataset: str = DEFAULT_DATASET,
    method: str = DEFAULT_METHOD,
    replay: int = DEFAULT_REPLAY,
    repeats: int = 3,
) -> tuple[float, float]:
    """Clean-path p50 (us), guard off vs on, over the same replay."""
    table = ctx.table(dataset)
    fitted = ctx.estimator(method, dataset)
    queries = list(
        generate_workload(
            table, replay, np.random.default_rng(ctx.seed + 306)
        ).queries
    )
    service_off = _guarded_service(copy.deepcopy(fitted), table, guarded=False)
    service_on = _guarded_service(copy.deepcopy(fitted), table, guarded=True)
    off: list[float] = []
    on: list[float] = []
    # Interleave the arms query by query so clock drift and cache
    # warmth hit both equally — the difference is the guard's cost,
    # not the machine's mood.
    for _ in range(repeats):
        for query in queries:
            start = perf_counter()
            service_off.serve(query)
            off.append(perf_counter() - start)
            start = perf_counter()
            service_on.serve(query)
            on.append(perf_counter() - start)
    return (
        float(np.percentile(off, 50.0) * 1e6),
        float(np.percentile(on, 50.0) * 1e6),
    )


def run_guard_bench(
    ctx: BenchContext,
    dataset: str = DEFAULT_DATASET,
    method: str = DEFAULT_METHOD,
    replay: int = DEFAULT_REPLAY,
) -> GuardBenchResult:
    """All three measurements rolled into one result."""
    scenarios = guard_scenarios(ctx, dataset, method, replay)
    cycle = quarantine_cycle(ctx, dataset, method)
    p50_off, p50_on = latency_overhead(ctx, dataset, method, replay)
    worst_off = max(s.worst_q_off for s in scenarios)
    worst_on = max(s.worst_q_on for s in scenarios)
    return GuardBenchResult(
        method=method,
        dataset=dataset,
        scenarios=scenarios,
        quarantine=cycle,
        p50_off_us=p50_off,
        p50_on_us=p50_on,
        p50_overhead_fraction=(p50_on - p50_off) / p50_off,
        worst_case_improvement=worst_off / max(worst_on, 1.0),
        availability=min(s.availability for s in scenarios),
    )


def format_guard(result: GuardBenchResult) -> str:
    """Human-readable scenario table plus the acceptance roll-ups."""
    header = [
        "scenario",
        "worst q off",
        "worst q on",
        "improvement",
        "p95 off",
        "p95 on",
        "clamped",
        "ood",
        "demoted",
    ]
    rows = [
        [
            s.scenario,
            f"{s.worst_q_off:,.0f}",
            f"{s.worst_q_on:,.0f}",
            f"{s.improvement:,.0f}x",
            f"{s.p95_q_off:,.0f}",
            f"{s.p95_q_on:,.0f}",
            str(s.clamped),
            str(s.ood_rerouted),
            str(s.demotions),
        ]
        for s in result.scenarios
    ]
    title = (
        f"Estimate guardrails under adversarial faults "
        f"({result.method} on {result.dataset}, "
        f"{result.scenarios[0].queries}-query replays)"
    )
    cycle = result.quarantine
    lines = [
        render_table(header, rows, title=title),
        (
            f"worst-case q-error improvement {result.worst_case_improvement:,.0f}x "
            f"(floor {ACCEPTANCE_IMPROVEMENT:.0f}x); availability "
            f"{result.availability:.3f} (floor {ACCEPTANCE_AVAILABILITY:.1f})"
        ),
        (
            f"clean-path p50 {result.p50_off_us:,.0f}us off, "
            f"{result.p50_on_us:,.0f}us on: overhead "
            f"{result.p50_overhead_fraction:+.1%} "
            f"(ceiling {ACCEPTANCE_OVERHEAD:.0%})"
        ),
        (
            f"quarantine cycle: demoted after {cycle.demoted_after} serves, "
            f"{cycle.probes_failed} probe(s) failed, "
            + (
                f"re-admitted by serve {cycle.serves}"
                if cycle.readmissions
                else "not re-admitted"
            )
            + f" (final state: {cycle.final_state})"
        ),
    ]
    return "\n".join(lines)


def write_guard_artifacts(
    ctx: BenchContext,
    result: GuardBenchResult,
    json_path: str | Path = "BENCH_serve.json",
    text_path: str | Path = "benchmarks/results/guard.txt",
) -> list[Path]:
    """Merge a ``guard`` section into ``BENCH_serve.json``; write text.

    The scale experiment's payload is preserved verbatim — only the
    ``guard`` key is replaced.
    """
    json_path, text_path = Path(json_path), Path(text_path)
    try:
        payload = json.loads(json_path.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["guard"] = {
        "method": result.method,
        "dataset": result.dataset,
        "scale": ctx.scale.name,
        "seed": ctx.seed,
        "acceptance": {
            "improvement_floor": ACCEPTANCE_IMPROVEMENT,
            "overhead_ceiling": ACCEPTANCE_OVERHEAD,
            "availability_floor": ACCEPTANCE_AVAILABILITY,
        },
        "worst_case_improvement": result.worst_case_improvement,
        "availability": result.availability,
        "p50_off_us": result.p50_off_us,
        "p50_on_us": result.p50_on_us,
        "p50_overhead_fraction": result.p50_overhead_fraction,
        "scenarios": {s.scenario: asdict(s) for s in result.scenarios},
        "quarantine": asdict(result.quarantine),
    }
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    text_path.parent.mkdir(parents=True, exist_ok=True)
    text_path.write_text(format_guard(result) + "\n")
    return [json_path, text_path]


def guard_experiment(
    ctx: BenchContext,
    dataset: str = DEFAULT_DATASET,
    method: str = DEFAULT_METHOD,
    json_path: str | Path = "BENCH_serve.json",
    text_path: str | Path = "benchmarks/results/guard.txt",
) -> str:
    """Run the guard bench, write both artifacts, return the report."""
    result = run_guard_bench(ctx, dataset, method)
    paths = write_guard_artifacts(ctx, result, json_path, text_path)
    lines = [format_guard(result)]
    lines += [f"[baseline written: {p}]" for p in paths]
    return "\n".join(lines)
