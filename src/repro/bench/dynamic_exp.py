"""Dynamic-environment experiments (paper Section 5, Figures 6-8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.workload import generate_workload
from ..datasets.updates import apply_update
from ..dynamic import CPU, GPU, Device, UpdateMeasurement, measure_update, mix_for_horizon
from ..estimators.learned import NaruEstimator
from ..registry import DBMS_NAMES, LEARNED_NAMES
from .context import BenchContext
from .reporting import format_seconds, render_table

#: Methods shown in Figure 6: the three DBMSs against the five learned.
FIGURE6_METHODS = DBMS_NAMES + LEARNED_NAMES


def _update_setting(ctx: BenchContext, dataset: str, seed_offset: int = 7):
    """(new_table, appended_rows, test_workload) for one dataset update."""
    rng = np.random.default_rng(ctx.seed + seed_offset)
    old_table = ctx.table(dataset)
    new_table, appended = apply_update(old_table, rng)
    test = generate_workload(new_table, ctx.scale.test_queries, rng)
    return new_table, appended, test


# ----------------------------------------------------------------------
# Figure 6: learned methods vs DBMSs across update frequencies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure6Cell:
    dataset: str
    method: str
    horizon_seconds: float
    frequency: str  # high / medium / low
    finished: bool
    p99: float
    update_seconds: float


def figure6(
    ctx: BenchContext,
    datasets: list[str] | None = None,
    methods: list[str] | None = None,
) -> list[Figure6Cell]:
    """99th-percentile q-error by update frequency (T high/medium/low).

    Horizons are placed relative to the measured update times so that the
    paper's phenomenology appears: at high frequency some learned methods
    cannot finish (reported unfinished), at low frequency all do.
    """
    from ..datasets import realworld

    datasets = datasets or realworld.dataset_names()
    methods = methods or FIGURE6_METHODS
    cells: list[Figure6Cell] = []
    rng = np.random.default_rng(ctx.seed + 11)
    for dataset in datasets:
        new_table, appended, test = _update_setting(ctx, dataset)
        measurements: dict[str, UpdateMeasurement] = {}
        for method in methods:
            est = ctx.fresh_estimator(method, dataset)
            measurements[method] = measure_update(
                est, new_table, appended, test, rng, ctx.scale.update_queries
            )
        slowest = max(
            m.effective_update_seconds() for m in measurements.values()
        )
        horizons = {
            "high": 0.35 * slowest,
            "medium": 1.2 * slowest,
            "low": 5.0 * slowest,
        }
        for freq, horizon in horizons.items():
            for method, meas in measurements.items():
                res = mix_for_horizon(meas, horizon)
                cells.append(
                    Figure6Cell(
                        dataset=dataset,
                        method=method,
                        horizon_seconds=horizon,
                        frequency=freq,
                        finished=res.finished,
                        p99=res.p99,
                        update_seconds=res.update_seconds,
                    )
                )
    return cells


def format_figure6(cells: list[Figure6Cell]) -> str:
    datasets = list(dict.fromkeys(c.dataset for c in cells))
    blocks = []
    for dataset in datasets:
        subset = [c for c in cells if c.dataset == dataset]
        methods = list(dict.fromkeys(c.method for c in subset))
        rows = []
        for method in methods:
            row: list[object] = [method]
            for freq in ("high", "medium", "low"):
                cell = next(
                    c for c in subset if c.method == method and c.frequency == freq
                )
                row.append("x" if not cell.finished else f"{cell.p99:.1f}")
            cell = next(c for c in subset if c.method == method)
            row.append(format_seconds(cell.update_seconds))
            rows.append(row)
        blocks.append(
            render_table(
                ["Method", "T=high", "T=medium", "T=low", "update"],
                rows,
                title=f"Figure 6 [{dataset}]: 99th q-error by update frequency"
                " (x = update missed the window)",
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 7: Naru's update-epochs vs accuracy trade-off
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure7Point:
    dataset: str
    epochs: int
    stale_p99: float
    updated_p99: float
    dynamic_p99: float
    update_seconds: float


def figure7(
    ctx: BenchContext,
    datasets: tuple[str, str] = ("census", "forest"),
    epoch_grid: tuple[int, ...] = (1, 2, 4, 8),
) -> list[Figure7Point]:
    """Stale / updated / dynamic 99th q-error as update epochs grow."""
    points: list[Figure7Point] = []
    rng = np.random.default_rng(ctx.seed + 13)
    for dataset in datasets:
        new_table, appended, test = _update_setting(ctx, dataset)
        measurements = []
        for epochs in epoch_grid:
            est = ctx.fresh_estimator("naru", dataset)
            assert isinstance(est, NaruEstimator)
            est.update_epochs = epochs
            measurements.append(
                (epochs,
                 measure_update(est, new_table, appended, test, rng,
                                ctx.scale.update_queries))
            )
        # T chosen so even the largest epoch count finishes (paper setup).
        horizon = 1.5 * max(
            m.effective_update_seconds() for _, m in measurements
        )
        for epochs, meas in measurements:
            res = mix_for_horizon(meas, horizon)
            points.append(
                Figure7Point(
                    dataset=dataset,
                    epochs=epochs,
                    stale_p99=meas.stale_p99,
                    updated_p99=meas.updated_p99,
                    dynamic_p99=res.p99,
                    update_seconds=meas.effective_update_seconds(),
                )
            )
    return points


def format_figure7(points: list[Figure7Point]) -> str:
    return render_table(
        ["Dataset", "Epochs", "Stale p99", "Updated p99", "Dynamic p99", "Update"],
        [
            [
                p.dataset,
                p.epochs,
                f"{p.stale_p99:.1f}",
                f"{p.updated_p99:.1f}",
                f"{p.dynamic_p99:.1f}",
                format_seconds(p.update_seconds),
            ]
            for p in points
        ],
        title="Figure 7 (Naru): update epochs vs accuracy trade-off",
    )


# ----------------------------------------------------------------------
# Figure 8: how much does GPU help?
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure8Cell:
    dataset: str
    method: str
    device: str
    finished: bool
    p99: float
    update_seconds: float


def figure8(
    ctx: BenchContext,
    datasets: tuple[str, str] = ("forest", "dmv"),
    methods: tuple[str, str] = ("naru", "lw-nn"),
) -> list[Figure8Cell]:
    """Dynamic p99 of Naru and LW-NN on CPU vs (derived) GPU."""
    cells: list[Figure8Cell] = []
    rng = np.random.default_rng(ctx.seed + 17)
    for dataset in datasets:
        new_table, appended, test = _update_setting(ctx, dataset)
        measurements: dict[str, UpdateMeasurement] = {}
        for method in methods:
            est = ctx.fresh_estimator(method, dataset)
            measurements[method] = measure_update(
                est, new_table, appended, test, rng, ctx.scale.update_queries
            )
        # T chosen so every method finishes on CPU (paper setup).
        horizon = 1.5 * max(
            m.effective_update_seconds(CPU) for m in measurements.values()
        )
        for method, meas in measurements.items():
            for device in (CPU, GPU):
                res = mix_for_horizon(meas, horizon, device)
                cells.append(
                    Figure8Cell(
                        dataset=dataset,
                        method=method,
                        device=device.name,
                        finished=res.finished,
                        p99=res.p99,
                        update_seconds=res.update_seconds,
                    )
                )
    return cells


def format_figure8(cells: list[Figure8Cell]) -> str:
    return render_table(
        ["Dataset", "Method", "Device", "Dynamic p99", "Update"],
        [
            [
                c.dataset,
                c.method,
                c.device,
                "x" if not c.finished else f"{c.p99:.1f}",
                format_seconds(c.update_seconds),
            ]
            for c in cells
        ],
        title="Figure 8: GPU effect on dynamic performance (GPU derived)",
    )


__all__ = [
    "FIGURE6_METHODS",
    "Figure6Cell",
    "Figure7Point",
    "Figure8Cell",
    "figure6",
    "figure7",
    "figure8",
    "format_figure6",
    "format_figure7",
    "format_figure8",
]
