"""Lifecycle-under-faults experiment: retrain, crash, resume, promote.

For each scenario a :class:`~repro.lifecycle.ModelLifecycleManager` runs
one drift-triggered pass over a Section 5 data update while the retrain
path misbehaves in a controlled way (crash mid-training, flaky or
hanging attempts, a torn checkpoint, a regressed candidate).  Probe
queries are served through the :class:`~repro.serve.EstimatorService`
before the pass, *during* it (the manager's injectable ``sleep`` hook
fires between retry attempts, exactly when a naive deployment would be
down), and after it.  The availability column is the fraction of those
probes answered with a finite, in-bounds estimate — the experiment's
claim is that it stays 1.0 no matter what the retrain does, because the
incumbent is never unplugged until a candidate passes the promotion
gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Callable

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.workload import Workload, generate_workload
from ..datasets.updates import apply_update
from ..faults import (
    CrashAtEpochFault,
    FlakyRetrainFault,
    HangingRetrainFault,
    NaNFault,
    truncate_file,
)
from ..lifecycle import (
    PROMOTED,
    ROLLED_BACK,
    RETRAIN_FAILED,
    DriftDetector,
    LifecycleReport,
    ModelLifecycleManager,
    PromotionGate,
    RetryPolicy,
)
from ..registry import make_estimator, make_service
from ..rules.enforce import is_sane
from .context import BenchContext
from .reporting import render_table


@dataclass(frozen=True)
class LifecycleScenario:
    """One update-path fault applied to the retrain/promote loop."""

    name: str
    #: wraps the freshly built candidate in a fault injector
    wrap: Callable[[CardinalityEstimator, int], CardinalityEstimator]
    #: the terminal state the scenario is expected to reach
    expect: str = PROMOTED
    #: cooperative per-attempt deadline (None = unbounded)
    attempt_deadline_seconds: float | None = None
    #: True to plant a torn (truncated) checkpoint before the pass
    torn_checkpoint: bool = False


def default_scenarios() -> list[LifecycleScenario]:
    """The update-path fault matrix run by :func:`lifecycle_experiment`."""
    return [
        LifecycleScenario("clean-retrain", lambda est, seed: est),
        LifecycleScenario(
            "crash-mid-train",
            lambda est, seed: CrashAtEpochFault(
                est, crash_epoch=max(1, est.target_epochs // 2)
            ),
        ),
        LifecycleScenario(
            "flaky-retrain",
            lambda est, seed: FlakyRetrainFault(est, fail_attempts=2),
        ),
        LifecycleScenario(
            "hanging-retrain",
            lambda est, seed: HangingRetrainFault(
                est, hang_seconds=0.6, hang_attempts=1
            ),
            attempt_deadline_seconds=0.5,
        ),
        LifecycleScenario(
            "torn-checkpoint",
            lambda est, seed: est,
            torn_checkpoint=True,
        ),
        LifecycleScenario(
            "regressed-candidate",
            lambda est, seed: NaNFault(est, probability=1.0, seed=seed),
            expect=ROLLED_BACK,
        ),
        LifecycleScenario(
            "retrain-exhausted",
            lambda est, seed: FlakyRetrainFault(est, fail_attempts=99),
            expect=RETRAIN_FAILED,
        ),
    ]


@dataclass(frozen=True)
class LifecycleResult:
    """Outcome of one lifecycle pass under one update-path fault."""

    scenario: str
    state: str
    expected: str
    as_expected: bool
    attempts: int
    resumed: bool
    epochs_run: int
    generation: int
    #: finite in-bounds fraction over every probe served around the pass
    availability: float
    probes_served: int
    #: probes served during backoff windows, while the retrain was down
    probes_during_backoff: int
    gate: str


def run_lifecycle_scenario(
    ctx: BenchContext,
    scenario: LifecycleScenario,
    primary: str = "lw-nn",
    dataset: str = "census",
    checkpoint_dir: str | Path | None = None,
) -> LifecycleResult:
    """Run one drift-triggered lifecycle pass under ``scenario``."""
    if checkpoint_dir is None:
        with TemporaryDirectory() as tmp:
            return run_lifecycle_scenario(ctx, scenario, primary, dataset, tmp)

    table = ctx.table(dataset)
    train = ctx.train_workload(dataset)
    probe_queries = list(ctx.test_workload(dataset).queries)[:30]
    probe = Workload(
        queries=tuple(probe_queries),
        cardinalities=table.cardinalities(probe_queries),
    )
    seed = ctx.seed + 23

    service = make_service(primary, scale=ctx.scale).fit(table, train)
    manager = ModelLifecycleManager(
        service,
        lambda: scenario.wrap(make_estimator(primary, ctx.scale), seed),
        DriftDetector(probe),
        checkpoint_dir=checkpoint_dir,
        gate=PromotionGate(probe_queries, seed=seed),
        policy=RetryPolicy(
            max_attempts=3, backoff_base_seconds=0.01, backoff_cap_seconds=0.05
        ),
        attempt_deadline_seconds=scenario.attempt_deadline_seconds,
        seed=seed,
        sleep=lambda _: probe_during_backoff(),
    )

    # The serving side of the experiment: probes answered around and
    # *during* the pass (the sleep hook fires between retry attempts).
    sane_flags: list[bool] = []
    backoff_probes = 0

    def serve_probes(n: int = 5) -> None:
        for query in probe_queries[:n]:
            served = service.serve(query)
            sane_flags.append(
                is_sane(served.estimate, manager.service.table.num_rows)
            )

    def probe_during_backoff() -> None:
        nonlocal backoff_probes
        serve_probes()
        backoff_probes += 5

    rng = np.random.default_rng(seed)
    new_table, appended = apply_update(table, rng, fraction=0.6)
    new_train = generate_workload(new_table, ctx.scale.train_queries, rng)

    if scenario.torn_checkpoint:
        plant_torn_checkpoint(manager, new_table, new_train)

    serve_probes()
    report: LifecycleReport = manager.on_update(new_table, appended, new_train)
    serve_probes()

    return LifecycleResult(
        scenario=scenario.name,
        state=report.state,
        expected=scenario.expect,
        as_expected=report.state == scenario.expect,
        attempts=report.retrain.total_attempts if report.retrain else 0,
        resumed=bool(report.retrain and report.retrain.resumed),
        epochs_run=report.retrain.total_epochs_run if report.retrain else 0,
        generation=report.generation,
        availability=float(np.mean(sane_flags)) if sane_flags else 0.0,
        probes_served=len(sane_flags),
        probes_during_backoff=backoff_probes,
        gate="-" if report.gate is None else ("pass" if report.gate.passed else "fail"),
    )


def plant_torn_checkpoint(
    manager: ModelLifecycleManager, table, workload
) -> None:
    """Leave a half-trained then truncated checkpoint in the store.

    Models a crash that tore the newest checkpoint mid-write *despite*
    the atomic rename (e.g. disk-level corruption): the resume must
    detect the bad checksum and fall back rather than trust it.
    """
    pilot = manager.candidate_factory()
    if not getattr(pilot, "supports_resumable_training", False):
        return
    pilot.begin_training(table, workload)
    pilot.train_epochs(workload, 1)
    path = manager.store.save(pilot.training_state(), pilot.epochs_trained)
    truncate_file(path)


def lifecycle_experiment(
    ctx: BenchContext,
    primary: str = "lw-nn",
    dataset: str = "census",
    scenarios: list[LifecycleScenario] | None = None,
) -> list[LifecycleResult]:
    """Run every update-path fault scenario through the lifecycle."""
    return [
        run_lifecycle_scenario(ctx, scenario, primary, dataset)
        for scenario in (scenarios or default_scenarios())
    ]


def format_lifecycle(
    results: list[LifecycleResult], primary: str = "lw-nn"
) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                r.scenario,
                r.state,
                "yes" if r.as_expected else "NO",
                str(r.attempts),
                "yes" if r.resumed else "no",
                str(r.epochs_run),
                str(r.generation),
                f"{100.0 * r.availability:.0f}%",
                f"{r.probes_served}({r.probes_during_backoff})",
                r.gate,
            ]
        )
    return render_table(
        [
            "scenario",
            "state",
            "expected?",
            "attempts",
            "resumed",
            "epochs",
            "gen",
            "avail",
            "probes(backoff)",
            "gate",
        ],
        rows,
        title=(
            f"Model lifecycle under update-path faults: {primary} primary; "
            "avail = finite in-bounds probe answers served before/during/"
            "after each retrain pass (incumbent serves until the gate "
            "passes a candidate)"
        ),
    )
