"""Figure 2: the literature's comparison graph, encoded as data.

Figure 2 of the paper is not an experiment: it visualises which learned
methods had been compared against which in their own papers (a directed
edge A -> B means A's paper evaluated against B).  The graph is encoded
here so the sparsity statistic the paper quotes ("misses over half of
the edges") can be recomputed.
"""

from __future__ import annotations

import networkx as nx

#: Nodes of Figure 2.
METHODS = ["mscn", "lw-xgb/nn", "dqm-d/q", "naru", "deepdb"]

#: Directed comparison edges visible in the literature at publication
#: time (paper Section 2.5): MSCN and DeepDB both evaluated against
#: MSCN-era baselines; Naru and DQM compared with MSCN; DeepDB compared
#: with MSCN; DQM compared with Naru.
COMPARISONS = [
    ("naru", "mscn"),
    ("deepdb", "mscn"),
    ("dqm-d/q", "mscn"),
    ("dqm-d/q", "naru"),
]


def comparison_graph() -> nx.DiGraph:
    """The directed who-compared-with-whom graph."""
    graph = nx.DiGraph()
    graph.add_nodes_from(METHODS)
    graph.add_edges_from(COMPARISONS)
    return graph


def missing_edge_fraction() -> float:
    """Fraction of ordered method pairs never compared (paper: > 1/2)."""
    graph = comparison_graph()
    n = graph.number_of_nodes()
    possible = n * (n - 1)
    # An unordered pair is "covered" if either direction exists.
    covered = {frozenset(e) for e in graph.edges}
    return 1.0 - 2 * len(covered) / possible


def format_figure2() -> str:
    graph = comparison_graph()
    lines = ["Figure 2: comparisons available in prior studies", "=" * 48]
    for a, b in graph.edges:
        lines.append(f"  {a} -> {b}")
    lines.append(
        f"missing pair fraction: {missing_edge_fraction():.2f} (paper: over 0.5)"
    )
    return "\n".join(lines)
