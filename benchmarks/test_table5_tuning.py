"""Table 5: hyper-parameter sensitivity of the neural estimators."""

import pytest

from repro.bench.static import format_table5, table5


@pytest.fixture(scope="module")
def results(ctx, record_result):
    # Two datasets keep the 3 methods x 4 architectures sweep tractable;
    # pass REPRO_SCALE=paper and edit here for the full four.
    out = table5(ctx, datasets=["census", "forest"])
    record_result("table5", format_table5(out))
    return out


def test_ratios_at_least_one(results):
    for method, by_dataset in results.items():
        for dataset, ratio in by_dataset.items():
            assert ratio >= 1.0


def test_tuning_matters(results):
    """Architecture choice must change accuracy materially for at least
    one neural method on each dataset (paper: ratios up to 10^5)."""
    for dataset in next(iter(results.values())):
        assert max(results[m][dataset] for m in results) > 1.3


def test_tuning_benchmark(ctx, benchmark, results):
    """Benchmark one tuning candidate's fit (the unit of tuning cost)."""
    from repro.estimators.learned import LwNnEstimator

    table = ctx.table("census")
    train = ctx.train_workload("census")
    benchmark(lambda: LwNnEstimator(hidden_units=(16,), epochs=2).fit(table, train))
