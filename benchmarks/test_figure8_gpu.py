"""Figure 8: how much does GPU help in dynamic environments?

"GPU" timings derive from the paper's measured speedup factors applied
to real CPU wall-clock (see DESIGN.md substitutions).
"""

import pytest

from repro.bench.dynamic_exp import figure8, format_figure8


@pytest.fixture(scope="module")
def cells(ctx, record_result):
    out = figure8(ctx)
    record_result("figure8", format_figure8(out))
    return out


def test_gpu_shortens_update_for_both_methods(cells):
    by = {(c.dataset, c.method, c.device): c for c in cells}
    for dataset in {c.dataset for c in cells}:
        for method in ("naru", "lw-nn"):
            cpu = by[(dataset, method, "cpu")]
            gpu = by[(dataset, method, "gpu")]
            assert gpu.update_seconds < cpu.update_seconds


def test_gpu_never_hurts_p99_materially(cells):
    """A shorter update can only shift queries from the stale to the
    updated model; the dynamic p99 should not get much worse."""
    by = {(c.dataset, c.method, c.device): c for c in cells}
    for dataset in {c.dataset for c in cells}:
        for method in ("naru", "lw-nn"):
            cpu = by[(dataset, method, "cpu")]
            gpu = by[(dataset, method, "gpu")]
            if cpu.finished and gpu.finished:
                assert gpu.p99 <= cpu.p99 * 2.0


def test_device_model_benchmark(benchmark, cells):
    from repro.dynamic import GPU

    benchmark(GPU.model_seconds, "naru", 100.0)
