"""Observability: the telemetry pipeline itself, run end to end.

Regenerates the ``obs`` experiment (instrumented train + serve replay),
leaves its span/metrics/event artifacts in ``benchmarks/results/``, and
benchmarks the cost of serving with a span collector installed — the
overhead the guarded fast paths are supposed to keep off the default
configuration.
"""

import json
from pathlib import Path

import pytest

from repro.bench.obs_exp import format_obs, obs_experiment
from repro.obs import parse_exposition

RESULTS_DIR = Path(__file__).parent / "results"

PRIMARY = "lw-xgb"


@pytest.fixture(scope="module")
def report(ctx, record_result):
    out = obs_experiment(ctx, primary=PRIMARY, out_dir=RESULTS_DIR)
    record_result("observability", format_obs(out))
    return out


def test_training_epochs_captured_for_both_loops(report):
    """Per-epoch loss telemetry for a GBDT loop and an NN loop."""
    assert set(report.models) == {PRIMARY, "lw-nn"}
    for model in report.models:
        epochs, first, last = report.training[model]
        assert epochs > 0, model


def test_exposition_matches_service_health(report):
    """The acceptance cross-check: per-tier latency sample counts in the
    Prometheus exposition equal the ServiceHealth attempt counters."""
    assert report.tier_check, "no tiers reported"
    for tier, attempts, samples in report.tier_check:
        assert attempts == samples, tier
    # the primary actually served traffic
    assert report.tier_check[0][1] > 0


def test_artifacts_on_disk_and_parseable(report):
    artifacts = report.artifacts
    assert artifacts is not None and artifacts.spans_written > 0
    spans = [
        json.loads(line)
        for line in open(artifacts.spans_path).read().splitlines()
    ]
    assert any(s["name"] == "serve" for s in spans)
    parse_exposition(open(artifacts.metrics_text_path).read())
    snapshot = json.loads(open(artifacts.metrics_json_path).read())
    assert "repro_serve_tier_seconds" in snapshot
    events = [
        json.loads(line)
        for line in open(artifacts.events_path).read().splitlines()
    ]
    assert artifacts.events_written == len(events)


def test_serve_overhead_with_collector(ctx, benchmark):
    """Serve hot path with full telemetry on (spans + metrics + events)."""
    from repro.obs import install_collector, uninstall_collector
    from repro.registry import make_service

    svc = make_service("sampling", deadline_ms=None)
    svc.fit(ctx.table("census"))
    queries = list(ctx.test_workload("census").queries)
    install_collector()
    try:
        served = benchmark(lambda: svc.serve_many(queries))
    finally:
        uninstall_collector()
    assert len(served) == len(queries)
