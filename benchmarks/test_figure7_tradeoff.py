"""Figure 7: Naru's update-epochs vs accuracy trade-off."""

import pytest

from repro.bench.dynamic_exp import figure7, format_figure7


@pytest.fixture(scope="module")
def points(ctx, record_result):
    out = figure7(ctx)
    record_result("figure7", format_figure7(out))
    return out


def test_update_time_grows_with_epochs(points):
    for dataset in {p.dataset for p in points}:
        subset = sorted(
            (p for p in points if p.dataset == dataset), key=lambda p: p.epochs
        )
        times = [p.update_seconds for p in subset]
        assert times == sorted(times)


def test_updated_model_improves_over_stale(points):
    """With enough epochs the updated model beats the stale one."""
    for dataset in {p.dataset for p in points}:
        best = min(
            (p for p in points if p.dataset == dataset),
            key=lambda p: p.updated_p99,
        )
        stale = max(p.stale_p99 for p in points if p.dataset == dataset)
        assert best.updated_p99 <= stale


def test_dynamic_bounded_by_components(points):
    """The dynamic mixture cannot beat both the stale and updated models."""
    for p in points:
        assert p.dynamic_p99 >= min(p.stale_p99, p.updated_p99) * 0.5


def test_one_epoch_update_benchmark(ctx, benchmark, points):
    import numpy as np

    from repro.datasets import apply_update
    from repro.estimators.learned import NaruEstimator

    table = ctx.table("census")
    est = NaruEstimator(epochs=1, update_epochs=1,
                        num_samples=ctx.scale.naru_samples).fit(table)
    new_table, appended = apply_update(table, np.random.default_rng(0))
    benchmark.pedantic(est.update, args=(new_table, appended), rounds=1, iterations=1)
