"""Figure 11: Naru's repeated-estimate spread on one adversarial query."""

import pytest

from repro.bench.robustness import figure11, format_figure11


@pytest.fixture(scope="module")
def result(ctx, record_result):
    out = figure11(ctx)
    record_result("figure11", format_figure11(out))
    return out


def test_estimates_spread_widely(result):
    """Under functional dependency with a wide first-column range, the
    progressive-sampling estimates spread over a large interval (paper:
    [0, 5992] for an actual of 1036)."""
    assert result.spread > 0.0
    assert result.relative_spread > 0.1


def test_estimates_are_finite_and_nonnegative(result):
    assert (result.estimates >= 0.0).all()
    assert result.estimates.max() < 1e12


def test_progressive_sampling_benchmark(ctx, benchmark, result):
    import numpy as np

    from repro.core import Predicate, Query
    from repro.datasets import generate_synthetic
    from repro.estimators.learned import NaruEstimator

    rng = np.random.default_rng(0)
    table = generate_synthetic(5000, 0.0, 1.0, 1000, rng)
    est = NaruEstimator(epochs=1, num_samples=ctx.scale.naru_samples).fit(table)
    query = Query((Predicate(0, 50.0, 900.0), Predicate(1, 100.0, 102.0)))
    benchmark(est.estimate, query)
