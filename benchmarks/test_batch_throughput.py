"""Batch-inference throughput: the repo's first perf baseline.

Validates the committed ``BENCH_batch.json`` baseline (schema and the
acceptance speedups) and re-runs the scalar-vs-batch experiment live to
confirm the numbers reproduce: the batched hot path still beats the
scalar loop and still returns the same estimates.  Regenerate the
committed baseline deterministically with ``python -m repro.bench
batch`` (same seed and scale as this suite's session context).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.batch_exp import (
    DEFAULT_BATCH_SIZE,
    batch_throughput,
    format_batch,
)
from repro.core.workload import generate_workload

REPO_ROOT = Path(__file__).parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_batch.json"

#: The acceptance trio: learned methods whose vectorized hot path must
#: deliver at least this speedup on the 1k-query batch.
ACCEPTANCE_SPEEDUPS = {"naru": 3.0, "mscn": 3.0, "lw-nn": 3.0}

REQUIRED_RESULT_KEYS = {
    "method",
    "batch_size",
    "scalar_measured_queries",
    "scalar_seconds",
    "batch_seconds",
    "scalar_qps",
    "batch_qps",
    "speedup",
    "max_rel_diff",
}


@pytest.fixture(scope="module")
def baseline():
    """The committed machine-readable baseline."""
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def live(ctx, record_result):
    """A fresh run of the experiment; refreshes the text table only
    (the JSON baseline is regenerated via ``python -m repro.bench
    batch`` so committed numbers are never silently overwritten by a
    noisy test run)."""
    out = batch_throughput(ctx)
    record_result("batch_throughput", format_batch(out))
    return {r.method: r for r in out}


class TestCommittedBaseline:
    def test_schema(self, baseline):
        assert baseline["experiment"] == "batch_throughput"
        assert baseline["batch_size"] == DEFAULT_BATCH_SIZE
        assert baseline["results"], "baseline has no per-method results"
        for method, result in baseline["results"].items():
            assert REQUIRED_RESULT_KEYS <= set(result), method
            assert result["method"] == method
            assert result["speedup"] > 0.0
            assert result["batch_qps"] > 0.0

    def test_acceptance_speedups(self, baseline):
        for method, floor in ACCEPTANCE_SPEEDUPS.items():
            speedup = baseline["results"][method]["speedup"]
            assert speedup >= floor, (
                f"{method}: committed baseline speedup {speedup:.1f}x "
                f"below the {floor:.0f}x acceptance floor"
            )

    def test_equivalence_within_tolerance(self, baseline):
        for method, result in baseline["results"].items():
            diff = result["max_rel_diff"]
            if diff is not None:
                assert diff <= 1e-9, method


class TestLiveRun:
    def test_covers_every_registered_estimator(self, live, baseline):
        assert set(live) == set(baseline["results"])

    def test_batch_matches_scalar_prefix(self, live):
        for method, result in live.items():
            if result.max_rel_diff is not None:
                assert result.max_rel_diff <= 1e-9, method

    def test_acceptance_trio_still_faster(self, live):
        # Loose live bound (the hard >=3x floor is asserted against the
        # committed baseline): a regression that erases the batch win
        # entirely fails here even on a noisy machine.
        for method in ACCEPTANCE_SPEEDUPS:
            assert live[method].speedup > 1.0, (
                f"{method}: batched path no faster than the scalar loop "
                f"({live[method].speedup:.2f}x)"
            )


def test_workload_regeneration_is_deterministic(ctx):
    """Same seed, same batch: the CLI regen reproduces the workload."""
    table = ctx.table("census")
    first = generate_workload(
        table, 50, np.random.default_rng(ctx.seed + 77)
    ).queries
    second = generate_workload(
        table, 50, np.random.default_rng(ctx.seed + 77)
    ).queries
    assert list(first) == list(second)


def test_batched_hot_path_benchmark(ctx, benchmark):
    """Benchmark one estimate_many call on the cheapest learned method."""
    est = ctx.estimator("mscn", "census")
    rng = np.random.default_rng(ctx.seed + 77)
    queries = list(generate_workload(ctx.table("census"), 256, rng).queries)
    out = benchmark(lambda: est.estimate_many(queries))
    assert out.shape == (256,)
