"""Serving under faults: availability and degradation of the fallback
chain while the primary estimator misbehaves (see repro.serve)."""

import numpy as np
import pytest

from repro.bench.serving_exp import (
    default_scenarios,
    format_serving,
    run_scenario,
    serving_experiment,
)

PRIMARY = "naru"


@pytest.fixture(scope="module")
def results(ctx, record_result):
    out = serving_experiment(ctx, primary=PRIMARY)
    record_result("serving_faults", format_serving(out, primary=PRIMARY))
    return {r.scenario: r for r in out}


def test_every_scenario_fully_available(results):
    """The acceptance bar: whatever the fault, every query is answered
    with a finite, in-bounds estimate."""
    for r in results.values():
        assert r.availability == 1.0, r.scenario


def test_total_failure_trips_the_breaker(results):
    for name in ("nan-storm", "exception-storm"):
        r = results[name]
        assert r.unguarded_availability == 0.0
        assert r.primary_breaker == "open"
        assert r.primary_trips >= 1
        assert r.fallback_rate > 0.9


def test_no_fault_baseline_stays_on_primary(results):
    r = results["no-fault"]
    assert r.fallback_rate == 0.0
    assert r.primary_trips == 0


def test_stale_model_degrades_accuracy_not_availability(results):
    r = results["stale-model"]
    assert r.availability == 1.0
    # staleness is the quiet failure mode: finite answers, worse errors
    assert r.primary_breaker == "closed"


def test_serving_replay_benchmark(ctx, benchmark, results):
    """Benchmark the no-fault serve hot path (chain + breaker overhead)."""
    scenario = default_scenarios()[0]
    result = benchmark(lambda: run_scenario(ctx, scenario, primary="sampling"))
    assert result.availability == 1.0
