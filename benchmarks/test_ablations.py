"""Design-choice ablations the paper calls out (DESIGN.md Section 6).

Not figures of the paper, but experiments on the design knobs it
discusses: Naru's progressive-sampling width, MSCN's materialized-sample
bitmap, LW's CE features, and DeepDB's RDC threshold.
"""

import numpy as np
import pytest

from repro.core.metrics import qerrors
from repro.estimators.learned import (
    DeepDbEstimator,
    LwXgbEstimator,
    MscnEstimator,
    NaruEstimator,
)


def _geo(errors: np.ndarray) -> float:
    return float(np.exp(np.log(errors).mean()))


@pytest.fixture(scope="module")
def setting(ctx):
    table = ctx.table("census")
    return table, ctx.train_workload("census"), ctx.test_workload("census")


def test_naru_sampling_width(setting, record_result, benchmark):
    """More progressive-sampling paths -> lower variance, higher latency
    (the inference bottleneck of paper Section 4.3)."""
    table, _, test = setting
    # Modest epochs: ablations compare settings, not absolute accuracy.
    est = NaruEstimator(epochs=6, num_samples=16).fit(table)
    queries = list(test.queries)[:60]
    rows = []
    errors_by_width = {}
    for width in (16, 64, 256):
        est.num_samples = width
        errors = qerrors(est.estimate_many(queries), test.cardinalities[:60])
        errors_by_width[width] = _geo(errors)
        rows.append(f"samples={width:4d}  geo-mean q-error={_geo(errors):.3f}")
    record_result("ablation_naru_samples", "\n".join(rows))
    # Wide sampling should not be worse than the narrowest setting.
    assert errors_by_width[256] <= errors_by_width[16] * 1.5
    est.num_samples = 64
    benchmark(est.estimate, queries[0])


def test_mscn_sample_bitmap_helps(setting, record_result, benchmark):
    """Paper Section 2.3: the materialized sample makes an 'obvious
    positive impact' on MSCN."""
    table, train, test = setting
    queries = list(test.queries)
    with_sample = MscnEstimator(epochs=10, use_sample=True, seed=3).fit(table, train)
    without = MscnEstimator(epochs=10, use_sample=False, seed=3).fit(table, train)
    err_with = _geo(qerrors(with_sample.estimate_many(queries), test.cardinalities))
    err_without = _geo(qerrors(without.estimate_many(queries), test.cardinalities))
    record_result(
        "ablation_mscn_sample",
        f"with sample:    geo-mean q-error={err_with:.3f}\n"
        f"without sample: geo-mean q-error={err_without:.3f}",
    )
    assert err_with <= err_without * 1.25
    benchmark(with_sample.estimate, queries[0])


def test_lw_ce_features_help(setting, record_result, benchmark):
    """The CE features (AVI/MinSel/EBO) are LW's key cheap signal."""
    table, train, test = setting
    queries = list(test.queries)
    with_ce = LwXgbEstimator(num_trees=32).fit(table, train)
    without = LwXgbEstimator(num_trees=32, use_ce_features=False).fit(table, train)
    err_with = _geo(qerrors(with_ce.estimate_many(queries), test.cardinalities))
    err_without = _geo(qerrors(without.estimate_many(queries), test.cardinalities))
    record_result(
        "ablation_lw_ce_features",
        f"with CE features:    geo-mean q-error={err_with:.3f}\n"
        f"without CE features: geo-mean q-error={err_without:.3f}",
    )
    assert err_with <= err_without
    benchmark(with_ce.estimate, queries[0])


def test_deepdb_rdc_threshold(setting, record_result, benchmark):
    """The RDC threshold trades SPN size for accuracy (the paper's grid
    search): a threshold of 1.0 forces full independence (pure AVI)."""
    table, _, test = setting
    queries = list(test.queries)
    rows = []
    errors = {}
    for threshold in (0.1, 0.3, 1.01):
        est = DeepDbEstimator(rdc_threshold=threshold).fit(table)
        err = _geo(qerrors(est.estimate_many(queries), test.cardinalities))
        errors[threshold] = err
        rows.append(
            f"rdc_threshold={threshold:4.2f}  geo-mean q-error={err:.3f}  "
            f"size={est.model_size_bytes() / 1024:.0f}KB"
        )
    record_result("ablation_deepdb_rdc", "\n".join(rows))
    # Modelling dependence must beat the forced-AVI configuration.
    assert min(errors[0.1], errors[0.3]) <= errors[1.01]
    benchmark(est.estimate, queries[0])
