"""Estimate guardrails under adversarial faults (see repro.guard).

Two layers of checking, mirroring ``test_scale_serving``:

* a **live run** of the guard experiment at the session scale, asserting
  the qualitative invariants (full availability, bounded worst case, a
  completed quarantine cycle) on fresh numbers;
* the **committed baseline** ``guard`` section of ``BENCH_serve.json``
  (regenerated at ``default`` scale via ``python -m repro.bench
  guard``), validated against the issue's acceptance bars so a stale or
  hand-edited artifact fails CI.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.guard_exp import (
    ACCEPTANCE_AVAILABILITY,
    ACCEPTANCE_IMPROVEMENT,
    ACCEPTANCE_OVERHEAD,
    format_guard,
    run_guard_bench,
)
from repro.core import generate_workload
from repro.guard import BoundSketch

REPO_ROOT = Path(__file__).parent.parent
BASELINE = REPO_ROOT / "BENCH_serve.json"

EXPECTED_SCENARIOS = {"correlated-shift", "ood-shift", "update-skew"}


@pytest.fixture(scope="module")
def result(ctx, record_result):
    out = run_guard_bench(ctx, replay=96)
    record_result("guard", format_guard(out))
    return out


def test_scenarios_are_complete(result):
    assert {s.scenario for s in result.scenarios} == EXPECTED_SCENARIOS


def test_every_scenario_fully_available(result):
    for s in result.scenarios:
        assert s.availability == 1.0, s.scenario


def test_guard_never_makes_the_worst_case_worse(result):
    for s in result.scenarios:
        assert s.worst_q_on <= s.worst_q_off, s.scenario
    assert result.worst_case_improvement >= 1.0


def test_bounds_fired_under_correlated_shift(result):
    shift = next(s for s in result.scenarios if s.scenario == "correlated-shift")
    assert shift.clamped > 0
    assert shift.improvement > 1.0


def test_ood_queries_were_rerouted(result):
    ood = next(s for s in result.scenarios if s.scenario == "ood-shift")
    assert ood.ood_rerouted > 0


def test_quarantine_cycle_completed(result):
    cycle = result.quarantine
    assert cycle.demotions >= 1
    assert cycle.demoted_after > 0
    assert cycle.readmissions >= 1
    assert cycle.final_state == "healthy"


def test_clamp_hot_path_benchmark(ctx, benchmark):
    """The guard's per-query cost: one bounds lookup + clamp."""
    table = ctx.table("census")
    sketch = BoundSketch(table)
    queries = list(
        generate_workload(table, 64, np.random.default_rng(ctx.seed)).queries
    )

    def clamp_all():
        return [min(1e9, sketch.upper_bound(q)) for q in queries]

    uppers = benchmark(clamp_all)
    assert all(0.0 <= u <= table.num_rows for u in uppers)


class TestCommittedBaseline:
    @pytest.fixture(scope="class")
    def payload(self):
        assert BASELINE.exists(), "run `python -m repro.bench guard` to regenerate"
        data = json.loads(BASELINE.read_text())
        assert "guard" in data, "run `python -m repro.bench guard` to regenerate"
        return data

    def test_schema(self, payload):
        guard = payload["guard"]
        for key in (
            "method",
            "dataset",
            "scale",
            "seed",
            "acceptance",
            "worst_case_improvement",
            "availability",
            "p50_off_us",
            "p50_on_us",
            "p50_overhead_fraction",
            "scenarios",
            "quarantine",
        ):
            assert key in guard, key
        assert guard["scale"] in ("default", "paper")
        assert set(guard["scenarios"]) == EXPECTED_SCENARIOS

    def test_worst_case_improvement_floor(self, payload):
        guard = payload["guard"]
        assert guard["acceptance"]["improvement_floor"] == ACCEPTANCE_IMPROVEMENT
        assert guard["worst_case_improvement"] >= ACCEPTANCE_IMPROVEMENT

    def test_availability_floor(self, payload):
        guard = payload["guard"]
        assert guard["availability"] >= ACCEPTANCE_AVAILABILITY
        for name, s in guard["scenarios"].items():
            assert s["availability"] == 1.0, name

    def test_overhead_ceiling(self, payload):
        guard = payload["guard"]
        assert guard["acceptance"]["overhead_ceiling"] == ACCEPTANCE_OVERHEAD
        assert guard["p50_overhead_fraction"] < ACCEPTANCE_OVERHEAD

    def test_quarantine_cycle_recorded(self, payload):
        cycle = payload["guard"]["quarantine"]
        assert cycle["demotions"] >= 1
        assert cycle["readmissions"] >= 1
        assert cycle["final_state"] == "healthy"

    def test_coexists_with_the_scale_sections(self, payload):
        # Merge discipline: regenerating the guard section must not have
        # clobbered the scale experiment's payload (and vice versa).
        assert payload["experiment"] == "scale_serving"
        assert "scenarios" in payload and payload["scenarios"]
