"""Figure 10: top-1% q-error vs domain size."""

import pytest

from repro.bench.robustness import figure10, format_sweep


@pytest.fixture(scope="module")
def cells(ctx, record_result):
    out = figure10(ctx)
    record_result("figure10", format_sweep(out, "d", "Figure 10: domain-size sweep"))
    return out


def test_levels_present(cells):
    assert {int(c.level) for c in cells} == {10, 100, 1000, 10000}


def test_most_methods_degrade_with_domain_size(cells):
    """Paper: except for LW-NN, methods output larger error on larger
    domains."""
    degraded = 0
    for method in {c.method for c in cells}:
        by_level = {int(c.level): c for c in cells if c.method == method}
        if by_level[10_000].top_median >= by_level[10].top_median:
            degraded += 1
    assert degraded >= 3


def test_naru_large_domain_error_is_large(cells):
    """Naru's fixed-size model loses resolution on the 10K domain
    (paper: ~100x degrade from 1K to 10K).  At bench scale the exact
    ratio is noisy, so assert the absolute effect: large top-1% errors
    on the widest domain."""
    naru = {int(c.level): c for c in cells if c.method == "naru"}
    assert naru[10_000].top_max > 50


def test_discretizer_benchmark(ctx, benchmark, cells):
    import numpy as np

    from repro.datasets import generate_synthetic
    from repro.estimators.discretize import Discretizer

    rng = np.random.default_rng(0)
    table = generate_synthetic(10_000, 1.0, 1.0, 10_000, rng)
    disc = Discretizer(table, max_bins=256)
    benchmark(disc.transform, table.data)
