"""Extension experiments beyond the paper's figures.

* Plan regret: the q-error -> plan-quality link the paper cites
  (Moerkotte et al.) measured with the miniature optimizer.
* Tuning strategies: random search and successive halving against grid
  search (paper Section 7.1's cost-control proposals).
* Naru wildcard-skipping: the inference-latency mitigation for the
  progressive-sampling bottleneck (paper Section 4.3).
* Taxonomy extras: DQM-D / DQM-Q / STHoles alongside the core methods.
"""

import numpy as np
import pytest

from repro.core.metrics import qerrors, summarize
from repro.estimators.learned import NaruEstimator
from repro.planner import SingleTablePlanner
from repro.tuning import SearchSpace, grid_search, successive_halving


def _geo(errors: np.ndarray) -> float:
    return float(np.exp(np.log(errors).mean()))


def test_plan_regret_tracks_qerror(ctx, record_result, benchmark):
    """Estimators with better q-error choose better plans on average."""
    table = ctx.table("power")
    train = ctx.train_workload("power")
    test = ctx.test_workload("power")
    queries = list(test.queries)
    planner = SingleTablePlanner(table)

    rows = []
    stats = {}
    for method in ("postgres", "naru", "deepdb"):
        est = ctx.estimator(method, "power")
        estimates = est.estimate_many(queries)
        errors = qerrors(estimates, test.cardinalities)
        regrets = np.array(
            [
                planner.regret(q, e, a)
                for q, e, a in zip(queries, estimates, test.cardinalities)
            ]
        )
        stats[method] = (_geo(errors), float(np.mean(regrets)))
        rows.append(
            f"{method:10s} geo q-error={_geo(errors):6.2f}  "
            f"mean regret={np.mean(regrets):6.3f}  "
            f"wrong plans={np.mean(regrets > 1.01) * 100:4.1f}%"
        )
    record_result("extension_plan_regret", "\n".join(rows))

    for method, (err, regret) in stats.items():
        assert regret >= 1.0 - 1e-9
    # Every estimator keeps mean regret modest; gross regressions would
    # indicate a broken estimator or cost model.
    assert max(r for _, r in stats.values()) < 5.0
    benchmark(planner.regret, queries[0], 10.0, 100.0)


def test_tuning_strategies_cost_accuracy(ctx, record_result, benchmark):
    """Successive halving approaches grid-search quality at lower cost."""
    from repro.estimators.learned import LwNnEstimator

    table = ctx.table("census")
    train = ctx.train_workload("census")
    test = ctx.test_workload("census")
    valid, _ = test.split(max(2, len(test) // 2))

    def builder(config):
        return LwNnEstimator(
            hidden_units=config["hidden_units"],
            epochs=int(config.get("epochs", 4)),
        )

    space = SearchSpace({"hidden_units": [(8,), (16,), (32, 32), (64, 64)]})
    rng = np.random.default_rng(0)
    grid = grid_search(builder, space, table, train, valid)
    halving = successive_halving(
        builder, space, table, train, valid, rng,
        num_configs=4, eta=2, min_epochs=1, max_epochs=4,
    )
    record_result(
        "extension_tuning",
        f"grid search:        best={grid.best_score:.3f} "
        f"cost={grid.total_fit_seconds:.1f}s trials={len(grid.trials)}\n"
        f"successive halving: best={halving.best_score:.3f} "
        f"cost={halving.total_fit_seconds:.1f}s trials={len(halving.trials)}",
    )
    # Halving must find something competitive with full grid search.
    assert halving.best_score <= grid.best_score * 3.0
    benchmark(space.sample, rng)


def test_naru_wildcard_skipping_latency(ctx, record_result, benchmark):
    """Wildcard-skipping must cut latency on sparse queries without a
    large accuracy cost."""
    table = ctx.table("census")
    test = ctx.test_workload("census")
    queries = list(test.queries)

    plain = NaruEstimator(
        epochs=ctx.scale.naru_epochs, num_samples=ctx.scale.naru_samples,
        inference_seed=1,
    ).fit(table)
    skipping = NaruEstimator(
        epochs=ctx.scale.naru_epochs, num_samples=ctx.scale.naru_samples,
        wildcard_skipping=True, inference_seed=1,
    ).fit(table)

    plain_est = plain.estimate_many(queries)
    skip_est = skipping.estimate_many(queries)
    plain_ms = plain.timing.mean_inference_ms
    skip_ms = skipping.timing.mean_inference_ms
    plain_geo = _geo(qerrors(plain_est, test.cardinalities))
    skip_geo = _geo(qerrors(skip_est, test.cardinalities))
    record_result(
        "extension_wildcard",
        f"plain naru:    {plain_ms:6.2f} ms/query  geo q-error={plain_geo:.3f}\n"
        f"wildcard-skip: {skip_ms:6.2f} ms/query  geo q-error={skip_geo:.3f}",
    )
    assert skip_ms < plain_ms
    assert skip_geo < plain_geo * 2.5
    benchmark(skipping.estimate, queries[0])


def test_taxonomy_extras(ctx, record_result, benchmark):
    """DQM-D / DQM-Q / STHoles run under the same workload protocol."""
    from repro.registry import make_estimator

    table = ctx.table("census")
    train = ctx.train_workload("census")
    test = ctx.test_workload("census")
    queries = list(test.queries)
    rows = []
    summaries = {}
    for name in ("dqm-d", "dqm-q", "stholes"):
        est = make_estimator(name, ctx.scale)
        est.fit(table, train if est.requires_workload else None)
        summary = summarize(est.estimate_many(queries), test.cardinalities)
        summaries[name] = summary
        rows.append(f"{name:9s} {summary}")
    record_result("extension_taxonomy_extras", "\n".join(rows))
    for name, summary in summaries.items():
        assert np.isfinite(summary.max)
    est = make_estimator("stholes", ctx.scale)
    est.fit(table, train)
    benchmark(est.estimate, queries[0])
