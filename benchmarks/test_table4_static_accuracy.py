"""Table 4: static q-error comparison, 13 estimators x 4 datasets.

The full table is regenerated once per session; the pytest-benchmark
timings cover one inference call per estimator group (the quantity
Figure 4 reports in milliseconds).
"""

import pytest

from repro.bench.static import DATASETS, format_table4, table4
from repro.registry import LEARNED_NAMES, TRADITIONAL_NAMES


@pytest.fixture(scope="module")
def results(ctx, record_result):
    out = table4(ctx)
    record_result("table4", format_table4(out))
    return out


def test_table4_learned_win_overall(results):
    """The headline: learned methods beat traditional ones in general."""
    wins = 0
    cells = 0
    for dataset, by_method in results.items():
        best_t = min(s.p99 for m, s in by_method.items() if m in TRADITIONAL_NAMES)
        best_l = min(s.p99 for m, s in by_method.items() if m in LEARNED_NAMES)
        cells += 1
        wins += best_l <= best_t
    assert wins >= cells / 2, "learned methods should win most datasets"


def test_table4_naru_among_most_accurate(results):
    """Naru is the paper's most robust learned method.  At bench scale
    the epoch budget blunts its edge, so the robust claim is: top-2 by
    max q-error somewhere, and never the worst learned method."""
    top2 = 0
    for dataset, by_method in results.items():
        ranked = sorted(
            (s.max, m) for m, s in by_method.items() if m in LEARNED_NAMES
        )
        if any(m == "naru" for _, m in ranked[:2]):
            top2 += 1
        assert ranked[-1][1] != "naru", f"naru worst on {dataset}"
    assert top2 >= 1


def test_table4_every_method_present(results):
    for dataset in DATASETS:
        assert set(results[dataset]) == set(TRADITIONAL_NAMES + LEARNED_NAMES)


@pytest.mark.parametrize("method", ["postgres", "sampling", "bayes",
                                    "lw-xgb", "naru", "deepdb"])
def test_inference_latency(ctx, results, benchmark, method):
    """Per-query estimation latency on census (Figure 4's lower panel)."""
    est = ctx.estimator(method, "census")
    query = ctx.test_workload("census").queries[0]
    benchmark(est.estimate, query)
