"""Figure 6: learned methods vs DBMSs under different update frequencies."""

import pytest

from repro.bench.dynamic_exp import figure6, format_figure6


@pytest.fixture(scope="module")
def cells(ctx, record_result):
    out = figure6(ctx)
    record_result("figure6", format_figure6(out))
    return out


def test_every_cell_present(cells):
    datasets = {c.dataset for c in cells}
    assert datasets == {"census", "forest", "power", "dmv"}
    for dataset in datasets:
        frequencies = {c.frequency for c in cells if c.dataset == dataset}
        assert frequencies == {"high", "medium", "low"}


def test_some_learned_method_misses_high_frequency(cells):
    """At the highest update frequency, at least one learned method
    cannot finish within T (the paper's 'x' cells)."""
    high = [c for c in cells if c.frequency == "high"]
    assert any(not c.finished for c in high)


def test_everything_finishes_at_low_frequency(cells):
    low = [c for c in cells if c.frequency == "low"]
    assert all(c.finished for c in low)


def test_dbms_updates_are_fast(cells):
    """DBMS statistics refresh within every window (paper: stable)."""
    for c in cells:
        if c.method in ("postgres", "mysql", "dbms-a"):
            assert c.finished, (c.dataset, c.method, c.frequency)


def test_no_alltime_winner_among_learned(cells):
    """Paper finding: within learned methods there is no clear winner
    across datasets/frequencies."""
    learned = [c for c in cells if c.method not in ("postgres", "mysql", "dbms-a")]
    winners = set()
    for dataset in {c.dataset for c in learned}:
        for freq in ("high", "medium", "low"):
            group = [
                c for c in learned
                if c.dataset == dataset and c.frequency == freq and c.finished
            ]
            if group:
                winners.add(min(group, key=lambda c: c.p99).method)
    assert len(winners) >= 2


def test_update_benchmark(ctx, benchmark, cells):
    """Benchmark the cheapest model update (DeepDB's sample insert)."""
    import numpy as np

    from repro.datasets import apply_update
    from repro.estimators.learned import DeepDbEstimator

    table = ctx.table("census")
    rng = np.random.default_rng(0)
    new_table, appended = apply_update(table, rng)
    est = DeepDbEstimator().fit(table)
    benchmark(est.update, new_table, appended)
