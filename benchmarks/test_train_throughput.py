"""Training-throughput baseline: kernels and process fan-out.

Validates the committed ``BENCH_train.json`` baseline (schema, the
float32-kernel and fused-Adam acceptance criteria, the fan-out
bit-identity flag) and re-runs the cheap parts live: the parallel
tuning sweep must still produce exactly the serial answer, and the
fused Adam step must still match the unfused reference bit-for-bit.
Regenerate the committed baseline with ``python -m repro.bench train``
(same seed and scale as this suite's session context).

Speedup floors are hardware-gated: fan-out cannot beat serial on a
single-CPU runner (the committed ``cpu_count`` records what the
baseline machine had), so wall-clock assertions only apply where the
recorded core count makes them physically possible.
"""

import json
from pathlib import Path

import pytest

from repro.bench.train_exp import adam_microbench, fanout_result
from repro.parallel import detect_worker_count

REPO_ROOT = Path(__file__).parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_train.json"

REQUIRED_KERNEL_KEYS = {
    "method",
    "epochs",
    "float64_epoch_seconds",
    "float32_epoch_seconds",
    "speedup",
    "float64_p95",
    "float32_p95",
    "float64_model_bytes",
    "float32_model_bytes",
}


@pytest.fixture(scope="module")
def baseline():
    """The committed machine-readable baseline."""
    return json.loads(BASELINE_PATH.read_text())


class TestCommittedBaseline:
    def test_schema(self, baseline):
        assert baseline["experiment"] == "train_throughput"
        assert baseline["cpu_count"] >= 1
        for method, kernel in baseline["kernels"].items():
            assert REQUIRED_KERNEL_KEYS <= set(kernel), method
            assert kernel["float32_epoch_seconds"] > 0.0
        assert baseline["adam_step"]["steps"] > 0
        assert baseline["fanout"]["trials"] >= 8
        assert baseline["fanout"]["workers"] >= 4

    def test_adam_fused_was_bit_identical(self, baseline):
        assert baseline["adam_step"]["bit_identical"] is True

    def test_fanout_results_were_equal(self, baseline):
        assert baseline["fanout"]["results_equal"] is True

    def test_float32_halves_model_bytes(self, baseline):
        for method, kernel in baseline["kernels"].items():
            assert (
                kernel["float32_model_bytes"] * 2 == kernel["float64_model_bytes"]
            ), method

    def test_float32_accuracy_within_tolerance(self, baseline):
        # The documented contract: float32 p95 within 10% of float64.
        for method, kernel in baseline["kernels"].items():
            ratio = kernel["float32_p95"] / kernel["float64_p95"]
            assert 1 / 1.1 <= ratio <= 1.1, f"{method}: {ratio}"

    def test_naru_float32_kernel_speedup(self, baseline):
        # The MADE forward/backward is matmul-bound, so halving the
        # element width must show up; 1.2x is the committed floor
        # (measured ~1.5-1.8x on the baseline machine).
        assert baseline["kernels"]["naru"]["speedup"] >= 1.2

    def test_fanout_speedup_where_cores_allow(self, baseline):
        # >=2x at 4 workers is only asserted when the recording machine
        # had >=2 usable cores; a 1-core baseline records overhead (the
        # honest number) and is exempt from the floor.
        fanout = baseline["fanout"]
        if fanout["cpu_count"] >= 2:
            assert fanout["speedup"] >= 2.0
        else:
            assert fanout["speedup"] > 0.0
            assert fanout["parallel_worker_seconds"] > 0.0


class TestLiveEquivalence:
    def test_parallel_sweep_is_bit_identical(self, ctx, record_result):
        """The non-negotiable live check: fan-out never changes results."""
        out = fanout_result(ctx, workers=4)
        assert out.results_equal
        assert out.cpu_count == detect_worker_count()
        record_result(
            "train_fanout",
            f"fanout: {out.trials} trials x {out.workers} workers on "
            f"{out.cpu_count} cpus; serial {out.serial_seconds:.2f}s, "
            f"parallel {out.parallel_seconds:.2f}s "
            f"({out.speedup:.2f}x), results_equal={out.results_equal}",
        )

    def test_fused_adam_still_bit_identical(self):
        result = adam_microbench(steps=20, shape=(64, 64))
        assert result.bit_identical


def test_adam_fused_step_benchmark(benchmark):
    """Benchmark the fused Adam step at a training-realistic size."""
    import numpy as np

    from repro.nn import Adam
    from repro.nn.layers import Parameter

    rng = np.random.default_rng(0)
    params = [Parameter(rng.standard_normal((256, 256))) for _ in range(4)]
    opt = Adam(params, 1e-3, fused=True)
    for p in params:
        p.grad[...] = rng.standard_normal(p.value.shape)
    benchmark(opt.step)
