"""Table 3: dataset characteristics, plus dataset-construction benchmark."""

from repro.bench.static import format_table3, table3
from repro.datasets import census


def test_table3(ctx, record_result, benchmark):
    rows = table3(ctx)
    record_result("table3", format_table3(rows))

    # Shape checks against the paper's Table 3.
    by_name = {r["dataset"]: r for r in rows}
    assert by_name["census"]["cols"] == 13 and by_name["census"]["cat"] == 8
    assert by_name["forest"]["cols"] == 10 and by_name["forest"]["cat"] == 0
    assert by_name["power"]["cols"] == 7
    assert by_name["dmv"]["cols"] == 11 and by_name["dmv"]["cat"] == 10
    sizes = [r["rows"] for r in rows]
    assert sizes == sorted(sizes), "paper's size ordering must be preserved"

    benchmark(census, num_rows=2000)
