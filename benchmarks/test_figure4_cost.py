"""Figure 4: training and inference cost, learned methods vs DBMSs."""

import pytest

from repro.bench.static import figure4, format_figure4


@pytest.fixture(scope="module")
def rows(ctx, record_result):
    out = figure4(ctx)
    record_result("figure4", format_figure4(out))
    return out


def test_dbms_training_is_fastest(rows):
    """Statistics collection beats every learned method's training on
    each dataset (the paper's magnitude gap)."""
    for dataset in {r.dataset for r in rows}:
        subset = [r for r in rows if r.dataset == dataset]
        dbms = min(
            r.train_seconds_cpu for r in subset
            if r.method in ("postgres", "mysql", "dbms-a")
        )
        naru = next(r for r in subset if r.method == "naru")
        assert naru.train_seconds_cpu > dbms


def test_query_driven_inference_is_fast(rows):
    """MSCN / LW inference is competitive; Naru is much slower (paper:
    the progressive-sampling bottleneck)."""
    for dataset in {r.dataset for r in rows}:
        subset = {r.method: r for r in rows if r.dataset == dataset}
        assert subset["naru"].inference_ms_cpu > subset["lw-xgb"].inference_ms_cpu


def test_gpu_derivation_follows_paper_factors(rows):
    for r in rows:
        if r.method == "naru":
            assert r.train_seconds_gpu == pytest.approx(r.train_seconds_cpu / 8.0)
        if r.method == "mscn":
            # GPU is slower for small MSCN models (paper Section 4.3).
            assert r.train_seconds_gpu > r.train_seconds_cpu


def test_training_benchmark(ctx, benchmark, rows):
    """Benchmark the cheapest training path (Postgres stats collection)."""
    from repro.estimators.traditional import PostgresEstimator

    table = ctx.table("census")
    benchmark(lambda: PostgresEstimator().fit(table))
