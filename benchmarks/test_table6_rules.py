"""Table 6: logical-rule satisfaction of the learned estimators."""

import pytest

from repro.bench.rules_exp import format_table6, table6


@pytest.fixture(scope="module")
def results(ctx, record_result):
    out = table6(ctx)
    record_result("table6", format_table6(out))
    return out


def test_deepdb_satisfies_every_rule(results):
    """Paper Table 6: DeepDB's sum/product/histogram structure is the
    only learned model that behaves logically."""
    assert all(r.satisfied for r in results["deepdb"].values())


def test_naru_violates_stability(results):
    assert not results["naru"]["stability"].satisfied


def test_naru_satisfies_fidelity(results):
    assert results["naru"]["fidelity-a"].satisfied
    assert results["naru"]["fidelity-b"].satisfied


def test_regression_methods_violate_fidelity(results):
    """Paper Table 6: the regression methods violate both fidelity
    rules.  Fidelity-A is a single full-domain probe that a tree model
    can pass by luck at small scale, so the robust assertion is:
    fidelity-B always violated, fidelity-A violated by most."""
    for method in ("mscn", "lw-xgb", "lw-nn"):
        assert not results[method]["fidelity-b"].satisfied
    fidelity_a_violations = sum(
        not results[m]["fidelity-a"].satisfied
        for m in ("mscn", "lw-xgb", "lw-nn")
    )
    assert fidelity_a_violations >= 2


def test_regression_methods_are_stable(results):
    for method in ("mscn", "lw-xgb", "lw-nn"):
        assert results[method]["stability"].satisfied


def test_rule_check_benchmark(ctx, benchmark, results):
    import numpy as np

    from repro.estimators.learned import DeepDbEstimator
    from repro.rules import check_monotonicity

    table = ctx.table("census")
    est = DeepDbEstimator().fit(table)
    rng = np.random.default_rng(0)
    benchmark.pedantic(
        check_monotonicity, args=(est, table, rng, 10), rounds=1, iterations=1
    )
