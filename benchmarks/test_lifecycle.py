"""Model lifecycle under update-path faults: availability through
crashing, flaky, hanging and regressed retrains (see repro.lifecycle)."""

import pytest

from repro.bench.lifecycle_exp import (
    default_scenarios,
    format_lifecycle,
    lifecycle_experiment,
    run_lifecycle_scenario,
)
from repro.lifecycle import PROMOTED, RETRAIN_FAILED, ROLLED_BACK

PRIMARY = "lw-nn"


@pytest.fixture(scope="module")
def results(ctx, record_result):
    out = lifecycle_experiment(ctx, primary=PRIMARY)
    record_result("lifecycle_faults", format_lifecycle(out, primary=PRIMARY))
    return {r.scenario: r for r in out}


def test_availability_survives_every_retrain_fault(results):
    """The acceptance bar: the incumbent answers every probe — before,
    during (backoff windows) and after the pass — whatever the retrain
    path does."""
    for r in results.values():
        assert r.availability == 1.0, r.scenario


def test_every_scenario_reaches_its_expected_state(results):
    for r in results.values():
        assert r.as_expected, f"{r.scenario}: {r.state} != {r.expected}"


def test_clean_retrain_promotes_and_bumps_generation(results):
    r = results["clean-retrain"]
    assert r.state == PROMOTED
    assert r.generation == 1
    assert r.gate == "pass"


def test_crash_resumes_from_checkpoint_not_epoch_zero(results):
    r = results["crash-mid-train"]
    assert r.state == PROMOTED
    assert r.resumed, "second attempt must resume from the checkpoint"
    # Crash + resume costs strictly fewer epochs than two full runs.
    clean_epochs = results["clean-retrain"].epochs_run
    assert r.epochs_run < 2 * clean_epochs


def test_torn_checkpoint_does_not_poison_the_retrain(results):
    r = results["torn-checkpoint"]
    assert r.state == PROMOTED


def test_regressed_candidate_never_reaches_serving(results):
    r = results["regressed-candidate"]
    assert r.state == ROLLED_BACK
    assert r.gate == "fail"
    assert r.generation == 0, "generation must not advance on rollback"


def test_exhausted_retrain_keeps_incumbent(results):
    r = results["retrain-exhausted"]
    assert r.state == RETRAIN_FAILED
    assert r.generation == 0
    assert r.probes_during_backoff > 0, "probes must be served during backoff"


def test_lifecycle_pass_benchmark(ctx, benchmark, results):
    """Benchmark one full drift->retrain->validate->promote pass."""
    scenario = default_scenarios()[0]
    result = benchmark(lambda: run_lifecycle_scenario(ctx, scenario, PRIMARY))
    assert result.availability == 1.0


@pytest.mark.slow
def test_lifecycle_long_horizon(ctx, record_result):
    """Five consecutive update rounds, alternating clean and faulty
    retrains: availability must hold across the whole horizon."""
    rounds = []
    scenarios = default_scenarios()
    by_name = {s.name: s for s in scenarios}
    plan = [
        "clean-retrain",
        "crash-mid-train",
        "retrain-exhausted",
        "flaky-retrain",
        "regressed-candidate",
    ]
    for name in plan:
        rounds.append(run_lifecycle_scenario(ctx, by_name[name], PRIMARY))
    record_result("lifecycle_long_horizon", format_lifecycle(rounds, PRIMARY))
    for r in rounds:
        assert r.availability == 1.0, r.scenario
        assert r.as_expected, r.scenario
