"""Sharded serving at scale: the chaos matrix (see repro.shard).

Two layers of checking:

* a **live run** of the scale experiment at the session scale, asserting
  the availability invariant and bit-identity on fresh numbers;
* the **committed baseline** ``BENCH_serve.json`` (regenerated at
  ``default`` scale via ``python -m repro.bench scale``), validated for
  schema and invariants so a stale or hand-edited artifact fails CI.

Speedup floors only apply where parallelism is physically possible: they
are gated on the ``cpu_count`` recorded *in the artifact*, so a baseline
produced on a 1-CPU container documents throughput without pretending
fork beats in-process serving there.
"""

import json
from pathlib import Path

import pytest

from repro.bench.scale_exp import (
    default_chaos_matrix,
    format_scale,
    run_chaos_scenario,
    scale_experiment,
    transport_experiment,
)

REPO_ROOT = Path(__file__).parent.parent
BASELINE = REPO_ROOT / "BENCH_serve.json"

#: the no-fault baseline plus the eight chaos scenarios
EXPECTED_SCENARIOS = {
    "no-fault",
    "worker-crash",
    "worker-hang",
    "slow-worker",
    "queue-flood",
    "model-corruption",
    "rolling-swap-failure",
    "budget-exhaustion",
    "slo-breach",
}


@pytest.fixture(scope="module")
def results(ctx, record_result, tmp_path_factory):
    # The live run's JSON goes to a scratch dir: the committed
    # BENCH_serve.json baseline is regenerated deliberately (at default
    # scale), not as a side effect of a ci-scale benchmark run.
    scratch = tmp_path_factory.mktemp("scale_serving")
    out = scale_experiment(
        ctx,
        json_path=scratch / "BENCH_serve.json",
        text_path=scratch / "scale_serving.txt",
    )
    record_result("scale_serving", format_scale(out))
    return {r.scenario: r for r in out}


def test_chaos_matrix_is_complete(results):
    assert set(results) == EXPECTED_SCENARIOS


def test_every_scenario_fully_available(results):
    """The acceptance bar: crash, hang, flood or corruption, every
    request still gets a finite in-bounds answer."""
    for r in results.values():
        assert r.availability == 1.0, r.scenario
        assert r.worker_served + r.fallback_served + r.shed == r.queries, r.scenario


def test_no_fault_is_bit_identical_to_serial(results):
    r = results["no-fault"]
    assert r.bit_identical is True
    assert r.shed == 0
    assert r.fallback_served == 0


def test_faults_leave_their_fingerprints(results):
    # Only fingerprints that are deterministic at any replay size; the
    # probabilistic ones (crash restarts at p=5e-5) are asserted on the
    # committed default-scale baseline below.
    assert results["queue-flood"].shed > 0
    assert set(results["queue-flood"].shed_reasons) <= {
        "capacity",
        "quota",
        "deadline",
    }
    assert results["model-corruption"].fallback_served > 0
    exhausted = results["budget-exhaustion"]
    assert exhausted.exhausted_shards > 0
    assert exhausted.fallback_mode_shards > 0


def test_rolling_swap_covers_all_outcomes(results):
    outcomes = results["rolling-swap-failure"].swap_outcomes
    assert outcomes == ("rejected", "rolled_back", "promoted")


def test_telemetry_counter_sum_matches_every_scenario(results):
    """Merged worker-side ``repro_worker_queries_total`` across all label
    sets must equal the parent's accepted-dispatch count — under crash,
    hang, re-dispatch, swap and inline fallback alike."""
    for r in results.values():
        assert r.telemetry_consistent is True, r.scenario


def test_worker_spans_reparent_under_dispatch(results):
    """Wherever workers answered, at least one worker span must link
    back to a parent-side ``serve.batch`` span via the propagated trace
    context (None means no worker served — e.g. budget exhaustion)."""
    r = results["no-fault"]
    assert r.worker_spans > 0
    assert r.worker_spans_reparented is True
    for r in results.values():
        assert r.worker_spans_reparented in (True, None), r.scenario


def test_slo_breach_scenario_pages_then_recovers(results):
    """The forced-breach scenario must cross the burn-rate threshold
    under slowed workers and recover after the mid-replay clean swap."""
    transitions = results["slo-breach"].slo_transitions
    assert transitions, "no SLO transitions recorded"
    assert transitions[0] == "breach"
    assert "recovered" in transitions


class TestCommittedBaseline:
    @pytest.fixture(scope="class")
    def payload(self):
        assert BASELINE.exists(), "run `python -m repro.bench scale` to regenerate"
        return json.loads(BASELINE.read_text())

    def test_schema(self, payload):
        for key in (
            "experiment",
            "scale",
            "seed",
            "cpu_count",
            "num_shards",
            "workers_per_shard",
            "chunk",
            "partial",
            "bit_identical",
            "serial_qps",
            "parallel_qps",
            "speedup",
            "scenarios",
        ):
            assert key in payload, key
        assert payload["experiment"] == "scale_serving"
        assert payload["partial"] is False
        assert payload["cpu_count"] >= 1

    def test_replayed_at_scale(self, payload):
        # The committed artifact must come from a >=100k-query replay.
        assert payload["scale"] in ("default", "paper")
        for name, scenario in payload["scenarios"].items():
            assert scenario["queries"] >= 100_000, name

    def test_availability_invariant_held(self, payload):
        assert set(payload["scenarios"]) == EXPECTED_SCENARIOS
        for name, scenario in payload["scenarios"].items():
            assert scenario["availability"] == 1.0, name
            assert scenario["throughput_qps"] > 0, name
            assert scenario["p99_ms"] >= scenario["p50_ms"] >= 0.0, name

    def test_telemetry_invariants_recorded(self, payload):
        for name, scenario in payload["scenarios"].items():
            assert scenario["telemetry_consistent"] is True, name
            assert scenario["worker_spans_reparented"] in (True, None), name
        no_fault = payload["scenarios"]["no-fault"]
        assert no_fault["worker_spans"] > 0
        assert no_fault["worker_spans_reparented"] is True

    def test_slo_breach_recorded(self, payload):
        transitions = payload["scenarios"]["slo-breach"]["slo_transitions"]
        assert transitions and transitions[0] == "breach"
        assert "recovered" in transitions

    def test_bit_identity_recorded(self, payload):
        assert payload["bit_identical"] is True

    def test_crash_scenario_exercised_supervision(self, payload):
        # At >=100k queries with crash p=5e-5, restarts are a
        # statistical certainty: a zero means supervision never fired.
        crash = payload["scenarios"]["worker-crash"]
        assert crash["worker_restarts"] + crash["redispatches"] > 0
        exhausted = payload["scenarios"]["budget-exhaustion"]
        assert exhausted["exhausted_shards"] > 0

    def test_speedup_floor_where_cores_exist(self, payload):
        if payload["cpu_count"] < 2:
            pytest.skip("single-CPU baseline: fork cannot beat in-process")
        assert payload["speedup"] >= 1.1


class TestTransport:
    """Pipe-vs-shm data plane: correctness is unconditional, speed is
    gated on physical parallelism.

    Bit-identity between the two transports (and against the inline
    reference) must hold on any machine — the codec either round-trips
    exactly or it is broken.  The shm speedup floor, by contrast, only
    applies where a worker can actually run beside the parent, so it is
    gated on the ``cpu_count`` recorded in the artifact, mirroring
    ``test_speedup_floor_where_cores_exist``.
    """

    @pytest.fixture(scope="class")
    def live(self, ctx):
        # Small cells: enough round trips for a stable p50 ordering
        # check is not the point here — correctness is.
        return transport_experiment(
            ctx,
            replay=512,
            num_shards=2,
            workers_per_shard=1,
            batch=64,
            rounds=5,
        )

    def test_live_bit_identity_is_unconditional(self, live):
        assert live["bit_identical"] == {"fp32": True, "int8": True}
        for transport in ("pipe", "shm"):
            chaos = live["chaos"][transport]
            assert chaos["availability"] == 1.0, transport
            assert chaos["bit_identical_to_inline"] is True, transport

    @pytest.fixture(scope="class")
    def payload(self):
        assert BASELINE.exists(), "run `python -m repro.bench scale` to regenerate"
        merged = json.loads(BASELINE.read_text())
        if "transport" not in merged:
            pytest.skip(
                "baseline lacks the transport comparison: regenerate via "
                "`python -m repro.bench scale --transport`"
            )
        return merged["transport"]

    def test_baseline_schema(self, payload):
        for key in (
            "batch",
            "rounds",
            "mode",
            "cpu_count",
            "pipe",
            "shm",
            "bit_identical",
            "speedup_p50_int8",
            "chaos",
        ):
            assert key in payload, key
        for transport in ("pipe", "shm"):
            for precision in ("fp32", "int8"):
                cell = payload[transport][precision]
                assert cell["p99_us"] >= cell["p50_us"] > 0.0
                assert cell["qps"] > 0.0

    def test_baseline_bit_identity_is_unconditional(self, payload):
        assert payload["bit_identical"] == {"fp32": True, "int8": True}
        for transport in ("pipe", "shm"):
            chaos = payload["chaos"][transport]
            assert chaos["availability"] == 1.0, transport
            assert chaos["bit_identical_to_inline"] is True, transport

    def test_shm_speedup_floor_where_cores_exist(self, payload):
        if payload["cpu_count"] < 2:
            pytest.skip("single-CPU baseline: shm cannot beat pipe dispatch")
        # The acceptance bar: at batch 1000 with int8 workers, shm p50
        # must halve the pipe round trip.
        assert payload["speedup_p50_int8"] >= 2.0


def test_dispatch_hot_path_benchmark(ctx, benchmark, results):
    """Benchmark the no-fault sharded replay (routing + admission +
    dispatch overhead on top of raw inference)."""
    scenario = default_chaos_matrix(ctx.seed)[0]
    result = benchmark(
        lambda: run_chaos_scenario(ctx, scenario, replay=512, mode="inline")
    )
    assert result.availability == 1.0


@pytest.mark.slow
def test_million_query_replay(ctx, tmp_path):
    """The headline number: >=1M queries through the full chaos matrix."""
    out = scale_experiment(
        ctx,
        replay=1_000_000,
        json_path=tmp_path / "BENCH_serve.json",
        text_path=tmp_path / "scale_serving.txt",
    )
    assert len(out) == len(EXPECTED_SCENARIOS)
    for r in out:
        assert r.availability == 1.0, r.scenario
        assert r.queries >= 1_000_000, r.scenario
