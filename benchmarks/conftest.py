"""Benchmark harness configuration.

Each benchmark file regenerates one table or figure of the paper and
benchmarks the representative hot path (usually inference) with
pytest-benchmark.  Formatted experiment tables are written to
``benchmarks/results/<experiment>.txt`` so a ``--benchmark-only`` run
leaves the regenerated evaluation on disk.

Scale is controlled by ``$REPRO_SCALE`` (default: ``ci`` here, so the
whole suite completes in minutes on one CPU; use ``default`` or
``paper`` for higher fidelity).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import BenchContext
from repro.scale import Scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext(Scale.from_environment(fallback="ci"), seed=42)


@pytest.fixture(scope="session")
def record_result():
    """Write one experiment's formatted table to the results directory."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(experiment: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
