"""Figures 9a/9b: top-1% q-error vs correlation and skew."""

import numpy as np
import pytest

from repro.bench.robustness import figure9a, figure9b, format_sweep


@pytest.fixture(scope="module")
def corr_cells(ctx, record_result):
    out = figure9a(ctx)
    record_result("figure9a", format_sweep(out, "c", "Figure 9a: correlation sweep"))
    return out


@pytest.fixture(scope="module")
def skew_cells(ctx, record_result):
    out = figure9b(ctx)
    record_result("figure9b", format_sweep(out, "s", "Figure 9b: skew sweep"))
    return out


def test_correlation_hurts_every_method(corr_cells):
    """Paper: all methods output larger errors on more correlated data;
    the error jumps dramatically at functional dependency (c = 1)."""
    methods = {c.method for c in corr_cells}
    for method in methods:
        by_level = {c.level: c for c in corr_cells if c.method == method}
        assert by_level[1.0].top_median > by_level[0.0].top_median


def test_functional_dependency_blowup(corr_cells):
    """The c=1.0 jump is large (paper: 10-100x) for most methods."""
    methods = {c.method for c in corr_cells}
    blowups = 0
    for method in methods:
        by_level = {c.level: c for c in corr_cells if c.method == method}
        if by_level[1.0].top_max > 5 * by_level[0.0].top_max:
            blowups += 1
    assert blowups >= 3


def test_skew_reactions_differ(skew_cells):
    """Paper: methods react differently to skew — the cross-method
    spread of the max-error trend must not collapse to one direction."""
    trends = {}
    for method in {c.method for c in skew_cells}:
        by_level = sorted(
            (c for c in skew_cells if c.method == method), key=lambda c: c.level
        )
        trends[method] = by_level[-1].top_median / max(by_level[0].top_median, 1.0)
    values = np.array(list(trends.values()))
    assert values.max() / max(values.min(), 1e-9) > 1.5


def test_sweep_cell_sanity(corr_cells, skew_cells):
    for cell in list(corr_cells) + list(skew_cells):
        assert cell.top_min >= 1.0
        assert cell.top_min <= cell.top_median <= cell.top_max


def test_synthetic_generation_benchmark(ctx, benchmark, corr_cells, skew_cells):
    from repro.datasets import generate_synthetic

    rng = np.random.default_rng(0)
    benchmark(generate_synthetic, 10_000, 1.0, 0.5, 1000, rng)
