"""Fast-path tier bench: committed acceptance numbers + big replay.

The fast tests validate the ``fastpath`` section that ``python -m
repro.bench fastpath`` merged into the committed ``BENCH_batch.json``:
schema, and the acceptance bars (int8+cache p50 at least 5x faster than
the PR 3 batch baseline on naru and mscn, p95 q-error within 1.5x of
the fp32 teacher).

The ``slow``-marked replay drives 100k+ queries through the
int8+cache serving tier — exact repeats, semantic drill-downs, and cold
misses interleaved — asserting steady-state hit rate, cache-hit latency,
and the semantic monotonicity bound on every subsumption answer.  Run it
with ``pytest -m slow benchmarks/test_fastpath_replay.py``.
"""

import copy
import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.fastpath_exp import (
    ACCEPTANCE_QERR_RATIO,
    ACCEPTANCE_SPEEDUP,
    replay_queries,
)
from repro.fastpath import SemanticEstimateCache
from repro.obs.clock import perf_counter
from repro.serve import EstimatorService

REPO_ROOT = Path(__file__).parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_batch.json"

#: the acceptance pair named by the roadmap: nn teachers with real cost
ACCEPTANCE_METHODS = ("naru", "mscn")

REQUIRED_TIER_KEYS = {
    "method",
    "tier",
    "p50_us",
    "p99_us",
    "qps",
    "p95_qerr",
    "model_size_bytes",
    "cache_hit_rate",
}

#: replay size for the slow steady-state test
REPLAY_UNIQUE = 2_000
REPLAY_WARM = 98_000


@pytest.fixture(scope="module")
def fastpath_baseline():
    """The committed fastpath section of the machine-readable baseline."""
    payload = json.loads(BASELINE_PATH.read_text())
    assert "fastpath" in payload, (
        "BENCH_batch.json has no fastpath section; regenerate with "
        "`python -m repro.bench fastpath`"
    )
    return payload["fastpath"]


class TestCommittedFastPathBaseline:
    def test_schema(self, fastpath_baseline):
        section = fastpath_baseline
        assert section["replay_queries"] > 0
        assert section["acceptance"]["speedup_floor"] == ACCEPTANCE_SPEEDUP
        assert (
            section["acceptance"]["qerr_ratio_ceiling"]
            == ACCEPTANCE_QERR_RATIO
        )
        for method in ACCEPTANCE_METHODS:
            result = section["results"][method]
            assert set(result["tiers"]) == {
                "fp32",
                "int8",
                "student",
                "int8+cache",
            }
            for tier in result["tiers"].values():
                assert REQUIRED_TIER_KEYS <= set(tier), (method, tier)

    def test_acceptance_speedup(self, fastpath_baseline):
        for method in ACCEPTANCE_METHODS:
            result = fastpath_baseline["results"][method]
            speedup = result["speedup_p50_vs_batch"]
            assert speedup is not None, f"{method}: no batch baseline"
            assert speedup >= ACCEPTANCE_SPEEDUP, (
                f"{method}: int8+cache p50 speedup {speedup:.1f}x below "
                f"the {ACCEPTANCE_SPEEDUP:.0f}x floor"
            )

    def test_acceptance_qerror(self, fastpath_baseline):
        for method in ACCEPTANCE_METHODS:
            result = fastpath_baseline["results"][method]
            for key in (
                "qerr_ratio_int8_vs_fp32",
                "qerr_ratio_cached_vs_fp32",
            ):
                assert result[key] <= ACCEPTANCE_QERR_RATIO, (
                    f"{method}: {key} {result[key]:.2f} above the "
                    f"{ACCEPTANCE_QERR_RATIO:.1f} ceiling"
                )

    def test_int8_tier_is_smaller(self, fastpath_baseline):
        for method in ACCEPTANCE_METHODS:
            tiers = fastpath_baseline["results"][method]["tiers"]
            assert (
                tiers["int8"]["model_size_bytes"]
                < tiers["fp32"]["model_size_bytes"] / 2
            ), f"{method}: int8 packing saved less than half the weights"


@pytest.mark.slow
def test_100k_query_replay_steady_state(ctx, record_result):
    """100k+ queries through the int8+cache tier: hit rate, latency,
    and the monotonicity bound on every semantic answer."""
    table = ctx.table("census")
    rng = np.random.default_rng(ctx.seed + 181)
    queries = replay_queries(
        table, rng, n_unique=REPLAY_UNIQUE, n_warm=REPLAY_WARM
    )
    assert len(queries) >= 100_000

    teacher = ctx.estimator("mscn", "census")
    quantized = copy.deepcopy(teacher)
    quantized.quantize_int8()
    cache = SemanticEstimateCache(capacity=4 * REPLAY_UNIQUE)
    service = EstimatorService([quantized], cache=cache, deadline_ms=None)

    latencies = np.empty(len(queries))
    bound_checked = 0
    for i, query in enumerate(queries):
        start = perf_counter()
        served = service.serve(query)
        latencies[i] = perf_counter() - start
        if cache.last_hit_kind == "semantic_hit":
            superset, cached_value = cache.last_semantic_match
            assert 0.0 <= served.estimate <= cached_value
            bound_checked += 1

    assert service.health().queries == len(queries)
    assert bound_checked > 0, "replay never exercised the semantic path"
    assert cache.hit_rate > 0.5, f"hit rate {cache.hit_rate:.2%}"
    p50_us = float(np.percentile(latencies, 50.0) * 1e6)
    p99_us = float(np.percentile(latencies, 99.0) * 1e6)
    # Loose machine-tolerant bound: steady state must stay far below
    # scalar model inference (hundreds of us for mscn at any scale).
    assert p50_us < 100.0, f"steady-state p50 {p50_us:.0f}us"

    record_result(
        "fastpath_replay",
        "\n".join(
            [
                f"100k-replay steady state ({len(queries)} queries, "
                "mscn int8+cache)",
                f"  p50 {p50_us:.1f}us  p99 {p99_us:.1f}us  "
                f"qps {len(queries) / latencies.sum():,.0f}",
                f"  hit rate {cache.hit_rate:.1%} "
                f"(exact {cache.hits}, semantic {cache.semantic_hits}, "
                f"misses {cache.misses})",
                f"  semantic bounds checked: {bound_checked}",
            ]
        ),
    )
