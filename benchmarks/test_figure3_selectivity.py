"""Figure 3: selectivity distribution of the unified workload."""

import numpy as np

from repro.bench.static import format_figure3, figure3
from repro.core.workload import WorkloadGenerator


def test_figure3(ctx, record_result, benchmark):
    series = figure3(ctx)
    record_result("figure3", format_figure3(series))

    for dataset, fracs in series.items():
        assert fracs.sum() == 1.0 or abs(fracs.sum() - 1.0) < 1e-9
        # The paper's generator produces a broad spectrum: no single
        # bucket may swallow the whole workload.
        assert fracs.max() < 0.9, dataset
        # Mostly non-empty queries (centers are data tuples 90% of the time).
        assert fracs[0] < 0.3, dataset

    generator = WorkloadGenerator(ctx.table("census"))
    rng = np.random.default_rng(0)
    benchmark(generator.generate_query, rng)
